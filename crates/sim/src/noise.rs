//! Noise channels and noise models.
//!
//! A [`KrausChannel`] is a completely-positive trace-preserving map given by
//! Kraus operators. A [`NoiseModel`] attaches channels to gate applications
//! (uniform defaults plus per-qubit/per-edge overrides, which the device
//! models use) and carries a [`ReadoutModel`] for terminal measurement
//! errors — including the *measurement crosstalk* that makes measurement
//! subsetting (Jigsaw) effective on real hardware.

use qt_math::{Complex, Matrix};
use std::collections::BTreeMap;

/// Structural kind of a channel (enables fast simulation paths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelKind {
    /// `ρ → (1−p)ρ + p·(uniform non-identity Pauli)` — admits the twirl
    /// identity fast path on density matrices.
    Depolarizing {
        /// The error probability.
        p: f64,
    },
    /// No special structure.
    General,
}

/// A channel that cannot be Pauli-twirled: twirling is implemented for
/// 1- and 2-qubit channels only (the arities gate noise attaches to).
/// Callers either propagate the error or skip the twirl and keep the
/// original channel — both beat the `assert!` abort this replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwirlUnsupported {
    /// Qubits the offending channel acts on.
    pub n_qubits: usize,
}

impl std::fmt::Display for TwirlUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pauli twirling supports 1- and 2-qubit channels, got {} qubits",
            self.n_qubits
        )
    }
}

impl std::error::Error for TwirlUnsupported {}

/// A quantum channel in Kraus form.
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    n_qubits: usize,
    kind: ChannelKind,
    ops: Vec<Matrix>,
    /// If the channel is a probabilistic mixture of unitaries: the
    /// state-independent probabilities and the normalized unitaries
    /// (an optimization for trajectory sampling).
    mixture: Option<(Vec<f64>, Vec<Matrix>)>,
    /// Gram matrices `K†K` (used for state-dependent Kraus sampling).
    grams: Vec<Matrix>,
}

impl KrausChannel {
    /// Builds a channel from raw Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators have inconsistent dimensions or do not
    /// satisfy the completeness relation `Σ K†K = I` within `1e-8`.
    pub fn new(ops: Vec<Matrix>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        let dim = ops[0].rows();
        assert!(dim.is_power_of_two() && dim >= 2);
        let n_qubits = dim.trailing_zeros() as usize;
        let mut sum = Matrix::zeros(dim, dim);
        let mut grams = Vec::with_capacity(ops.len());
        for k in &ops {
            assert_eq!(k.rows(), dim);
            assert_eq!(k.cols(), dim);
            let g = k.dagger().mul(k);
            sum = sum.add(&g);
            grams.push(g);
        }
        assert!(
            sum.approx_eq(&Matrix::identity(dim), 1e-8),
            "Kraus operators do not satisfy the completeness relation"
        );
        // Detect a mixed-unitary structure: K = √p · U with U unitary.
        let mut probs = Vec::with_capacity(ops.len());
        let mut units = Vec::with_capacity(ops.len());
        let mut mixed = true;
        for k in &ops {
            let p = k.dagger().mul(k).trace().re / dim as f64;
            if p < 1e-14 {
                probs.push(0.0);
                units.push(Matrix::identity(dim));
                continue;
            }
            let u = k.scale(Complex::real(1.0 / p.sqrt()));
            if u.is_unitary(1e-8) {
                probs.push(p);
                units.push(u);
            } else {
                mixed = false;
                break;
            }
        }
        let mixture = if mixed { Some((probs, units)) } else { None };
        KrausChannel {
            n_qubits,
            kind: ChannelKind::General,
            ops,
            mixture,
            grams,
        }
    }

    /// The structural kind of the channel.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// Number of qubits the channel acts on.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[Matrix] {
        &self.ops
    }

    /// Gram matrices `K†K`, aligned with [`KrausChannel::ops`].
    pub fn grams(&self) -> &[Matrix] {
        &self.grams
    }

    /// State-independent mixture probabilities, if the channel is a
    /// probabilistic mixture of unitaries.
    pub fn mixture_probs(&self) -> Option<&[f64]> {
        self.mixture.as_ref().map(|(p, _)| p.as_slice())
    }

    /// Normalized unitaries of a mixed-unitary channel, aligned with
    /// [`KrausChannel::mixture_probs`].
    pub fn mixture_unitaries(&self) -> Option<&[Matrix]> {
        self.mixture.as_ref().map(|(_, u)| u.as_slice())
    }

    /// The Pauli-twirling approximation of the channel: a Pauli mixture with
    /// probabilities `q_P = |tr(P·K_i)|² / d²` summed over Kraus operators.
    ///
    /// Exact for channels that are already Pauli mixtures; for others (e.g.
    /// thermal relaxation) it is the standard PTA used to speed up
    /// stochastic simulation.
    ///
    /// # Errors
    ///
    /// [`TwirlUnsupported`] for channels on more than 2 qubits (the Pauli
    /// basis enumeration here stops at pairs, matching the gate noise the
    /// device models attach). This used to be an `assert!` panic, which
    /// turned a wide custom channel into a process abort mid-batch.
    pub fn pauli_twirled(&self) -> Result<KrausChannel, TwirlUnsupported> {
        use qt_math::Pauli;
        if self.n_qubits > 2 {
            return Err(TwirlUnsupported {
                n_qubits: self.n_qubits,
            });
        }
        let d = (1usize << self.n_qubits) as f64;
        let paulis: Vec<Matrix> = if self.n_qubits == 1 {
            Pauli::ALL.iter().map(|p| p.matrix()).collect()
        } else {
            let mut v = Vec::with_capacity(16);
            for hi in Pauli::ALL {
                for lo in Pauli::ALL {
                    v.push(hi.matrix().kron(&lo.matrix()));
                }
            }
            v
        };
        let mut ops = Vec::new();
        for p in &paulis {
            let mut q = 0.0;
            for k in &self.ops {
                q += p.trace_product(k).norm_sqr();
            }
            q /= d * d;
            if q > 1e-15 {
                ops.push(p.scale(Complex::real(q.sqrt())));
            }
        }
        Ok(KrausChannel::new(ops))
    }

    /// The channel as an explicit probabilistic mixture of Pauli strings —
    /// `(probability, one Pauli letter per operand)` with operand 0 first —
    /// or `None` when the channel is not a Pauli mixture (up to global
    /// phases on the unitaries). Zero-probability entries are dropped.
    ///
    /// This is the admissibility predicate (and the event table) of the
    /// stabilizer engine's exact trajectory-free noise mixing: Pauli errors
    /// conjugate stabilizer generators to `±`themselves, so their effect is
    /// a sign flip that can be mixed analytically instead of sampled.
    pub fn pauli_mixture(&self) -> Option<Vec<(f64, Vec<qt_math::Pauli>)>> {
        use qt_math::Pauli;
        if self.n_qubits > 2 {
            return None;
        }
        let probs = self.mixture_probs()?;
        let units = self.mixture_unitaries()?;
        let mut out = Vec::with_capacity(probs.len());
        for (&p, u) in probs.iter().zip(units) {
            if p == 0.0 {
                continue;
            }
            let mut found: Option<Vec<Pauli>> = None;
            if self.n_qubits == 1 {
                for cand in Pauli::ALL {
                    if u.approx_eq_up_to_phase(&cand.matrix(), 1e-9) {
                        found = Some(vec![cand]);
                        break;
                    }
                }
            } else {
                'outer: for hi in Pauli::ALL {
                    for lo in Pauli::ALL {
                        // Operand 0 is the low bit: kron(high, low).
                        if u.approx_eq_up_to_phase(&hi.matrix().kron(&lo.matrix()), 1e-9) {
                            found = Some(vec![lo, hi]);
                            break 'outer;
                        }
                    }
                }
            }
            out.push((p, found?));
        }
        Some(out)
    }

    /// The identity channel on `n` qubits.
    pub fn identity(n: usize) -> Self {
        KrausChannel::new(vec![Matrix::identity(1 << n)])
    }

    /// The `n`-qubit depolarizing channel with error probability `p`:
    /// with probability `p` a uniformly random non-identity Pauli is applied.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]` or `n ∉ {1, 2}`.
    pub fn depolarizing(n: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        assert!(n == 1 || n == 2, "depolarizing supports 1 or 2 qubits");
        let paulis_1q = [
            Matrix::identity(2),
            qt_math::pauli::x2(),
            qt_math::pauli::y2(),
            qt_math::pauli::z2(),
        ];
        let mut ops = Vec::new();
        if n == 1 {
            let k = 3.0;
            for (i, m) in paulis_1q.iter().enumerate() {
                let prob = if i == 0 { 1.0 - p } else { p / k };
                if prob > 0.0 {
                    ops.push(m.scale(Complex::real(prob.sqrt())));
                }
            }
        } else {
            let k = 15.0;
            for (i, a) in paulis_1q.iter().enumerate() {
                for (j, b) in paulis_1q.iter().enumerate() {
                    let prob = if i == 0 && j == 0 { 1.0 - p } else { p / k };
                    if prob > 0.0 {
                        // Operand 0 is the low bit: kron(high=b, low=a).
                        ops.push(b.kron(a).scale(Complex::real(prob.sqrt())));
                    }
                }
            }
        }
        let mut ch = KrausChannel::new(ops);
        ch.kind = ChannelKind::Depolarizing { p };
        ch
    }

    /// Single-qubit bit-flip channel (X with probability `p`).
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        KrausChannel::new(vec![
            Matrix::identity(2).scale(Complex::real((1.0 - p).sqrt())),
            qt_math::pauli::x2().scale(Complex::real(p.sqrt())),
        ])
    }

    /// Single-qubit phase-flip channel (Z with probability `p`).
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        KrausChannel::new(vec![
            Matrix::identity(2).scale(Complex::real((1.0 - p).sqrt())),
            qt_math::pauli::z2().scale(Complex::real(p.sqrt())),
        ])
    }

    /// Single-qubit amplitude damping with decay probability `gamma`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma));
        let k0 = Matrix::mat2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real((1.0 - gamma).sqrt()),
        );
        let k1 = Matrix::mat2(
            Complex::ZERO,
            Complex::real(gamma.sqrt()),
            Complex::ZERO,
            Complex::ZERO,
        );
        KrausChannel::new(vec![k0, k1])
    }

    /// Single-qubit thermal relaxation for duration `time` with relaxation
    /// times `t1`, `t2` (same units). Valid for `t2 ≤ 2·t1`.
    ///
    /// Modeled as amplitude damping (`γ = 1 − e^{−t/T1}`) followed by pure
    /// dephasing chosen so the coherence decays as `e^{−t/T2}`.
    ///
    /// # Panics
    ///
    /// Panics if `t2 > 2 t1` or any parameter is non-positive.
    pub fn thermal_relaxation(t1: f64, t2: f64, time: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0 && time >= 0.0);
        assert!(t2 <= 2.0 * t1, "thermal relaxation requires T2 ≤ 2·T1");
        let gamma = 1.0 - (-time / t1).exp();
        // √(1−γ)·√(1−λ) = e^{−t/T2}  ⇒  1−λ = e^{−2t/T2} · e^{t/T1}
        let one_minus_lambda = ((-2.0 * time / t2).exp() * (time / t1).exp()).min(1.0);
        let lambda = (1.0 - one_minus_lambda).max(0.0);
        let k0 = Matrix::mat2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(((1.0 - gamma) * (1.0 - lambda)).sqrt()),
        );
        let k1 = Matrix::mat2(
            Complex::ZERO,
            Complex::real(gamma.sqrt()),
            Complex::ZERO,
            Complex::ZERO,
        );
        let k2 = Matrix::mat2(
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(((1.0 - gamma) * lambda).sqrt()),
        );
        KrausChannel::new(vec![k0, k1, k2])
    }
}

/// Terminal measurement (readout) error model.
///
/// Each measured qubit flips independently: a true `0` reads `1` with
/// probability `p01`, a true `1` reads `0` with probability `p10`. The
/// `crosstalk` term adds flip probability proportional to the number of
/// *other* simultaneously measured qubits — the mechanism measurement
/// subsetting exploits (Jigsaw, Sec. II-A of the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReadoutModel {
    /// Default probability of reading 1 when the state is 0.
    pub default_p01: f64,
    /// Default probability of reading 0 when the state is 1.
    pub default_p10: f64,
    /// Per-qubit overrides `(p01, p10)`.
    pub per_qubit: BTreeMap<usize, (f64, f64)>,
    /// Additional flip probability per other simultaneously measured qubit.
    pub crosstalk: f64,
}

impl ReadoutModel {
    /// No readout error.
    pub fn ideal() -> Self {
        ReadoutModel::default()
    }

    /// Uniform symmetric readout error.
    pub fn uniform(p: f64) -> Self {
        ReadoutModel {
            default_p01: p,
            default_p10: p,
            ..Default::default()
        }
    }

    /// Uniform symmetric readout error with measurement crosstalk.
    pub fn with_crosstalk(p: f64, crosstalk: f64) -> Self {
        ReadoutModel {
            default_p01: p,
            default_p10: p,
            crosstalk,
            ..Default::default()
        }
    }

    /// Whether the model is exactly noise-free.
    pub fn is_ideal(&self) -> bool {
        self.default_p01 == 0.0
            && self.default_p10 == 0.0
            && self.crosstalk == 0.0
            && self.per_qubit.values().all(|&(a, b)| a == 0.0 && b == 0.0)
    }

    /// Effective flip probabilities `(p01, p10)` for qubit `q` when
    /// `n_measured` qubits are read out simultaneously.
    pub fn flip_probs(&self, q: usize, n_measured: usize) -> (f64, f64) {
        let (p01, p10) = self
            .per_qubit
            .get(&q)
            .copied()
            .unwrap_or((self.default_p01, self.default_p10));
        let extra = self.crosstalk * n_measured.saturating_sub(1) as f64;
        ((p01 + extra).clamp(0.0, 0.5), (p10 + extra).clamp(0.0, 0.5))
    }
}

/// Applies the readout model to an outcome distribution over `measured`
/// qubits (distribution bit `i` = `measured[i]`).
///
/// The result carries the input's total mass. An ideal readout model is a
/// passthrough, preserving sparse storage untouched — wide distributions
/// flow through unchanged. A noisy readout convolves every measured bit
/// with its flip probabilities, which fills in the outcome space; that
/// path densifies and is therefore capped at
/// [`qt_dist::DEFAULT_DENSE_CAP_BITS`] measured bits.
///
/// # Panics
///
/// Panics if `dist` has more bits than `measured` entries, or if a noisy
/// readout is requested over a distribution too wide to densify.
pub fn apply_readout(
    dist: &qt_dist::Distribution,
    measured: &[usize],
    readout: &ReadoutModel,
) -> qt_dist::Distribution {
    assert_eq!(dist.n_bits(), measured.len());
    if readout.is_ideal() {
        return dist.clone();
    }
    let n_measured = measured.len();
    let mut cur = dist
        .densify()
        .expect("noisy readout convolution fills the outcome space and must densify");
    for (pos, &q) in measured.iter().enumerate() {
        let (p01, p10) = readout.flip_probs(q, n_measured);
        if p01 == 0.0 && p10 == 0.0 {
            continue;
        }
        let mask = 1usize << pos;
        let mut next = vec![0.0; cur.len()];
        for (idx, &p) in cur.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            if idx & mask == 0 {
                next[idx] += p * (1.0 - p01);
                next[idx | mask] += p * p01;
            } else {
                next[idx] += p * (1.0 - p10);
                next[idx & !mask] += p * p10;
            }
        }
        cur = next;
    }
    qt_dist::Distribution::try_from_probs(n_measured, cur)
        .expect("convolution preserves the outcome space")
}

/// A gate-level noise rule: channels applied on the full operand set plus
/// channels applied on each operand individually (e.g. thermal relaxation).
#[derive(Debug, Clone, Default)]
pub struct NoiseRule {
    /// Channels acting on all operands jointly (arity must match the gate).
    pub full: Vec<KrausChannel>,
    /// Single-qubit channels applied to every operand.
    pub per_operand: Vec<KrausChannel>,
}

impl NoiseRule {
    /// No noise.
    pub fn ideal() -> Self {
        NoiseRule::default()
    }

    /// Whether the rule applies no noise at all.
    pub fn is_ideal(&self) -> bool {
        self.full.is_empty() && self.per_operand.is_empty()
    }
}

/// A complete gate + readout noise model.
#[derive(Debug, Clone, Default)]
pub struct NoiseModel {
    /// Rule applied to single-qubit gates.
    pub one_qubit: NoiseRule,
    /// Rule applied to two-qubit gates.
    pub two_qubit: NoiseRule,
    /// Per-qubit overrides for single-qubit gates.
    pub per_qubit: BTreeMap<usize, NoiseRule>,
    /// Per-edge overrides for two-qubit gates (key = sorted qubit pair).
    pub per_edge: BTreeMap<(usize, usize), NoiseRule>,
    /// Terminal readout error.
    pub readout: ReadoutModel,
}

impl NoiseModel {
    /// A noise-free model.
    pub fn ideal() -> Self {
        NoiseModel::default()
    }

    /// Uniform depolarizing gate noise (`p1` after 1q gates, `p2` after 2q
    /// gates) with no readout error.
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        NoiseModel {
            one_qubit: NoiseRule {
                full: vec![KrausChannel::depolarizing(1, p1)],
                per_operand: vec![],
            },
            two_qubit: NoiseRule {
                full: vec![KrausChannel::depolarizing(2, p2)],
                per_operand: vec![],
            },
            ..Default::default()
        }
    }

    /// Adds a uniform symmetric readout error.
    pub fn with_readout(mut self, p: f64) -> Self {
        self.readout = ReadoutModel::uniform(p);
        self
    }

    /// Adds a readout model.
    pub fn with_readout_model(mut self, readout: ReadoutModel) -> Self {
        self.readout = readout;
        self
    }

    /// Replaces every gate channel by its Pauli-twirling approximation
    /// (readout is unchanged). Speeds up trajectory simulation of models
    /// with state-dependent channels such as thermal relaxation.
    ///
    /// # Errors
    ///
    /// [`TwirlUnsupported`] if any attached channel acts on more than 2
    /// qubits; the model is returned untouched-by-side-effects, so callers
    /// can fall back to the untwirled original.
    pub fn pauli_twirled(&self) -> Result<NoiseModel, TwirlUnsupported> {
        let twirl_rule = |r: &NoiseRule| -> Result<NoiseRule, TwirlUnsupported> {
            Ok(NoiseRule {
                full: r
                    .full
                    .iter()
                    .map(KrausChannel::pauli_twirled)
                    .collect::<Result<_, _>>()?,
                per_operand: r
                    .per_operand
                    .iter()
                    .map(KrausChannel::pauli_twirled)
                    .collect::<Result<_, _>>()?,
            })
        };
        Ok(NoiseModel {
            one_qubit: twirl_rule(&self.one_qubit)?,
            two_qubit: twirl_rule(&self.two_qubit)?,
            per_qubit: self
                .per_qubit
                .iter()
                .map(|(&q, r)| Ok((q, twirl_rule(r)?)))
                .collect::<Result<_, TwirlUnsupported>>()?,
            per_edge: self
                .per_edge
                .iter()
                .map(|(&e, r)| Ok((e, twirl_rule(r)?)))
                .collect::<Result<_, TwirlUnsupported>>()?,
            readout: self.readout.clone(),
        })
    }

    /// Whether every attached gate channel is a probabilistic Pauli mixture
    /// (see [`KrausChannel::pauli_mixture`]) — the noise-side admissibility
    /// condition of the stabilizer engine. Ideal models qualify trivially;
    /// readout error is not considered because it applies above the engine.
    pub fn gate_noise_is_pauli(&self) -> bool {
        let rule_ok = |r: &NoiseRule| {
            r.full
                .iter()
                .chain(&r.per_operand)
                .all(|ch| ch.pauli_mixture().is_some())
        };
        rule_ok(&self.one_qubit)
            && rule_ok(&self.two_qubit)
            && self.per_qubit.values().all(rule_ok)
            && self.per_edge.values().all(rule_ok)
    }

    /// Whether the model applies no gate noise (readout may still be noisy).
    pub fn gates_are_ideal(&self) -> bool {
        self.one_qubit.is_ideal()
            && self.two_qubit.is_ideal()
            && self.per_qubit.values().all(NoiseRule::is_ideal)
            && self.per_edge.values().all(NoiseRule::is_ideal)
    }

    /// Resolves the channels to apply after an instruction, as
    /// `(operand qubits, channel)` pairs in application order.
    pub fn channels_for(
        &self,
        instr: &qt_circuit::Instruction,
    ) -> Vec<(Vec<usize>, &KrausChannel)> {
        let arity = instr.qubits.len();
        let rule: &NoiseRule = match arity {
            1 => self
                .per_qubit
                .get(&instr.qubits[0])
                .unwrap_or(&self.one_qubit),
            2 => {
                let mut key = (instr.qubits[0], instr.qubits[1]);
                if key.0 > key.1 {
                    key = (key.1, key.0);
                }
                self.per_edge.get(&key).unwrap_or(&self.two_qubit)
            }
            // Wider gates: fall back to per-operand single-qubit noise of the
            // two-qubit rule (device flows decompose to 2q first).
            _ => &self.two_qubit,
        };
        let mut out = Vec::new();
        if arity <= 2 {
            for ch in &rule.full {
                assert_eq!(
                    ch.n_qubits(),
                    arity,
                    "full-channel arity mismatch for gate {}",
                    instr.gate.name()
                );
                out.push((instr.qubits.clone(), ch));
            }
        }
        for ch in &rule.per_operand {
            assert_eq!(ch.n_qubits(), 1);
            for &q in &instr.qubits {
                out.push((vec![q], ch));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::{Gate, Instruction};

    #[test]
    fn depolarizing_is_trace_preserving_and_mixed_unitary() {
        for p in [0.0, 0.01, 0.3, 1.0] {
            let ch = KrausChannel::depolarizing(1, p);
            assert!(ch.mixture_probs().is_some());
            let ch2 = KrausChannel::depolarizing(2, p);
            assert!(ch2.mixture_probs().is_some());
            if p > 0.0 {
                let probs = ch2.mixture_probs().unwrap();
                assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn thermal_relaxation_is_valid_channel() {
        let ch = KrausChannel::thermal_relaxation(125.94e3, 188.75e3, 426.667);
        // Completeness is checked in the constructor; also not mixed-unitary.
        assert!(ch.mixture_probs().is_none());
        assert_eq!(ch.ops().len(), 3);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn invalid_kraus_rejected() {
        KrausChannel::new(vec![qt_math::pauli::x2().scale(Complex::real(0.5))]);
    }

    #[test]
    fn readout_confusion_single_qubit() {
        let ro = ReadoutModel::uniform(0.1);
        let dist = qt_dist::Distribution::try_from_probs(1, vec![1.0, 0.0]).unwrap();
        let out = apply_readout(&dist, &[0], &ro);
        assert!((out.prob(0) - 0.9).abs() < 1e-12);
        assert!((out.prob(1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn readout_crosstalk_grows_with_measured_count() {
        let ro = ReadoutModel::with_crosstalk(0.01, 0.02);
        let (p01_alone, _) = ro.flip_probs(0, 1);
        let (p01_many, _) = ro.flip_probs(0, 5);
        assert!((p01_alone - 0.01).abs() < 1e-12);
        assert!((p01_many - (0.01 + 0.08)).abs() < 1e-12);
    }

    #[test]
    fn readout_preserves_total_probability() {
        let ro = ReadoutModel {
            default_p01: 0.07,
            default_p10: 0.12,
            crosstalk: 0.01,
            ..Default::default()
        };
        let dist = qt_dist::Distribution::try_from_probs(2, vec![0.5, 0.2, 0.2, 0.1]).unwrap();
        let out = apply_readout(&dist, &[3, 5], &ro);
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn channels_resolve_with_overrides() {
        let mut nm = NoiseModel::depolarizing(0.001, 0.01);
        nm.per_qubit.insert(
            7,
            NoiseRule {
                full: vec![KrausChannel::depolarizing(1, 0.5)],
                per_operand: vec![],
            },
        );
        let i1 = Instruction::new(Gate::H, vec![7]);
        let chans = nm.channels_for(&i1);
        assert_eq!(chans.len(), 1);
        // The override applies: p=0.5 depolarizing has I-prob 0.5.
        assert!((chans[0].1.mixture_probs().unwrap()[0] - 0.5).abs() < 1e-12);
        let i2 = Instruction::new(Gate::Cz, vec![2, 1]);
        let chans2 = nm.channels_for(&i2);
        assert_eq!(chans2.len(), 1);
        assert_eq!(chans2[0].0, vec![2, 1]);
    }

    #[test]
    fn twirled_amplitude_damping_has_textbook_probabilities() {
        let gamma: f64 = 0.3;
        let ch = KrausChannel::amplitude_damping(gamma)
            .pauli_twirled()
            .expect("1q channel twirls");
        let probs = ch.mixture_probs().expect("twirled channel is a mixture");
        let s = (1.0 - gamma).sqrt();
        let expect = [
            (1.0 + s) * (1.0 + s) / 4.0,
            gamma / 4.0,
            gamma / 4.0,
            (1.0 - s) * (1.0 - s) / 4.0,
        ];
        assert_eq!(probs.len(), 4);
        for (p, e) in probs.iter().zip(expect) {
            assert!((p - e).abs() < 1e-10, "twirled probs {probs:?}");
        }
    }

    #[test]
    fn twirling_fixes_pauli_channels() {
        let ch = KrausChannel::depolarizing(1, 0.2);
        let tw = ch.pauli_twirled().expect("1q channel twirls");
        let a = ch.mixture_probs().unwrap();
        let b = tw.mixture_probs().unwrap();
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn twirling_wide_channels_errors_instead_of_panicking() {
        // Regression: >2-qubit channels used to hit an `assert!`.
        let ch = KrausChannel::identity(3);
        assert_eq!(ch.pauli_twirled(), Err(TwirlUnsupported { n_qubits: 3 }));
        let e = ch.pauli_twirled().unwrap_err();
        assert!(e.to_string().contains('3'), "{e}");
        // And the model-level twirl surfaces the same error...
        let mut noise = NoiseModel::depolarizing(0.01, 0.02);
        noise.one_qubit.full.push(KrausChannel::identity(3));
        assert!(noise.pauli_twirled().is_err());
        // ...while models with only supported channels still twirl.
        assert!(NoiseModel::depolarizing(0.01, 0.02).pauli_twirled().is_ok());
    }

    #[test]
    fn pauli_mixture_recognizes_pauli_channels() {
        use qt_math::Pauli;
        let mix = KrausChannel::depolarizing(1, 0.3)
            .pauli_mixture()
            .expect("depolarizing is a Pauli mixture");
        assert_eq!(mix.len(), 4);
        assert_eq!(mix[0].1, vec![Pauli::I]);
        assert!((mix[0].0 - 0.7).abs() < 1e-12);
        for (p, _) in &mix[1..] {
            assert!((p - 0.1).abs() < 1e-12);
        }
        let mix2 = KrausChannel::depolarizing(2, 0.15)
            .pauli_mixture()
            .expect("2q depolarizing is a Pauli mixture");
        assert_eq!(mix2.len(), 16);
        assert!((mix2.iter().map(|(p, _)| p).sum::<f64>() - 1.0).abs() < 1e-12);
        // Ordering check: option index 1 of the 2q depolarizing loop is
        // `X.kron(I)` — X on the high bit, i.e. on operand 1.
        assert_eq!(mix2[1].1, vec![Pauli::I, Pauli::X]);
        assert!(KrausChannel::bit_flip(0.1).pauli_mixture().is_some());
        assert!(KrausChannel::phase_flip(0.1).pauli_mixture().is_some());
        assert!(KrausChannel::identity(1).pauli_mixture().is_some());
    }

    #[test]
    fn pauli_mixture_rejects_non_pauli_channels() {
        assert!(KrausChannel::amplitude_damping(0.3)
            .pauli_mixture()
            .is_none());
        assert!(
            KrausChannel::thermal_relaxation(125.94e3, 188.75e3, 426.667)
                .pauli_mixture()
                .is_none()
        );
        // A mixed-unitary channel whose unitaries are not Paulis.
        let th: f64 = 0.4;
        let u = Gate::Rx(th).matrix();
        let ch = KrausChannel::new(vec![
            Matrix::identity(2).scale(Complex::real(0.5f64.sqrt())),
            u.scale(Complex::real(0.5f64.sqrt())),
        ]);
        assert!(ch.mixture_probs().is_some());
        assert!(ch.pauli_mixture().is_none());
    }

    #[test]
    fn gate_noise_is_pauli_classifies_models() {
        assert!(NoiseModel::ideal().gate_noise_is_pauli());
        assert!(NoiseModel::depolarizing(0.01, 0.05).gate_noise_is_pauli());
        assert!(NoiseModel::depolarizing(0.01, 0.05)
            .with_readout(0.1)
            .gate_noise_is_pauli());
        let mut nm = NoiseModel::depolarizing(0.01, 0.05);
        nm.one_qubit
            .per_operand
            .push(KrausChannel::amplitude_damping(0.1));
        assert!(!nm.gate_noise_is_pauli());
        // Twirling restores Pauli structure.
        assert!(nm.pauli_twirled().unwrap().gate_noise_is_pauli());
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let ch = KrausChannel::amplitude_damping(0.3);
        let mut rho =
            crate::DensityMatrix::from_matrix(&qt_math::states::PrepState::One.projector());
        rho.apply_kraus(ch.ops(), &[0]);
        let d = rho.diagonal();
        assert!((d[0] - 0.3).abs() < 1e-12);
        assert!((d[1] - 0.7).abs() < 1e-12);
    }
}
