//! The failure domain of batched execution: typed per-job errors, a
//! deterministic fault-injection layer, and the isolation/retry engine
//! shared by `qt-core`'s fallible pipeline and the `qt-serve` batcher.
//!
//! Three layers, composable from the bottom up:
//!
//! * [`RunError`] — the typed failure of one job, with a `transient`
//!   classification that drives retry decisions upstream;
//! * [`ChaosRunner`] — a [`Runner`] wrapper that injects faults (transient
//!   and fatal errors, panics, latency, corrupt-shaped outputs) from a
//!   *seeded, job-keyed schedule*: the fault a job suffers depends only on
//!   `(chaos seed, JobKey)`, never on batch composition, submission order
//!   or wall-clock, so every chaos run is reproducible bit for bit;
//! * [`try_run_batch_isolated`] / [`try_run_batch_resilient`] — panic
//!   quarantine by batch bisection, corrupt-shape detection, and bounded
//!   deterministic retry-with-backoff. Backoff only delays re-execution —
//!   every engine is deterministic given its inputs, so retries can never
//!   change a result, only recover one (the determinism argument in
//!   DESIGN.md §Failure domain).

use crate::executor::{BatchJob, JobKey, RunOutput, Runner};
use qt_dist::Distribution;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What failed when a job could not produce a usable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunErrorKind {
    /// The backend/runner failed to execute the job (the generic class:
    /// injected chaos, device rejections, lost results).
    Backend,
    /// The job could not be transpiled/laid out onto the target device.
    Transpile,
    /// The runner returned an output whose shape does not match the job
    /// (wrong measured-register width) — detected by shape validation in
    /// [`try_run_batch_resilient`] and treated as transient, since a
    /// corrupt readback usually is.
    CorruptOutput,
    /// The runner panicked; the panic was caught and quarantined to this
    /// job by batch bisection.
    Panic,
}

impl RunErrorKind {
    /// Stable machine-readable tag (wire format, logs).
    pub fn tag(self) -> &'static str {
        match self {
            RunErrorKind::Backend => "backend",
            RunErrorKind::Transpile => "transpile",
            RunErrorKind::CorruptOutput => "corrupt_output",
            RunErrorKind::Panic => "panic",
        }
    }

    /// Parses [`RunErrorKind::tag`] back (wire decode).
    pub fn from_tag(tag: &str) -> Option<RunErrorKind> {
        Some(match tag {
            "backend" => RunErrorKind::Backend,
            "transpile" => RunErrorKind::Transpile,
            "corrupt_output" => RunErrorKind::CorruptOutput,
            "panic" => RunErrorKind::Panic,
            _ => return None,
        })
    }
}

/// The typed failure of one batch job. `transient` is the retry contract:
/// `true` means a bounded re-execution may succeed (and the retry engine
/// will spend budget on it), `false` means the job is failed for good
/// (fatal backend errors, transpile failures, quarantined panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// What failed.
    pub kind: RunErrorKind,
    /// Whether a retry may succeed.
    pub transient: bool,
    /// Human-readable detail (single line).
    pub detail: String,
}

impl RunError {
    /// A retryable failure.
    pub fn transient(kind: RunErrorKind, detail: impl Into<String>) -> RunError {
        RunError {
            kind,
            transient: true,
            detail: detail.into(),
        }
    }

    /// A permanent failure: retrying cannot help.
    pub fn permanent(kind: RunErrorKind, detail: impl Into<String>) -> RunError {
        RunError {
            kind,
            transient: false,
            detail: detail.into(),
        }
    }

    /// A quarantined panic (always permanent: a panicking job is poisoned,
    /// not flaky — re-running it would panic again and waste a bisection).
    pub fn panic(detail: impl Into<String>) -> RunError {
        RunError::permanent(RunErrorKind::Panic, detail)
    }

    /// Whether a retry may succeed.
    pub fn is_transient(&self) -> bool {
        self.transient
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} job failure ({}): {}",
            if self.transient {
                "transient"
            } else {
                "permanent"
            },
            self.kind.tag(),
            self.detail
        )
    }
}

impl std::error::Error for RunError {}

/// Bounded deterministic retry policy for transient [`RunError`]s.
///
/// `max_attempts` counts *total* executions of a job, the first included;
/// before retry attempt `k` (`k >= 2`) the engine sleeps
/// `min(base_backoff * 2^(k-2), max_backoff)`. The backoff affects timing
/// only: jobs are deterministic in their inputs, so a recovered retry is
/// bit-identical to a first-attempt success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, first execution included (`>= 1`).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further attempt.
    pub base_backoff: Duration,
    /// Cap on the per-attempt backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure is final after the first attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// `max_attempts` total attempts with zero backoff (tests, benchmarks).
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The sleep before attempt `attempt` (1-based; `None` for the first
    /// attempt or a zero-backoff policy).
    pub fn backoff_before(&self, attempt: u32) -> Option<Duration> {
        if attempt < 2 || self.base_backoff.is_zero() {
            return None;
        }
        let doublings = (attempt - 2).min(16);
        let backoff = self
            .base_backoff
            .checked_mul(1u32 << doublings)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff);
        (!backoff.is_zero()).then_some(backoff)
    }
}

/// What the failure domain did during one fallible execution — recorded in
/// `OverheadStats.failures` so degraded reports say *how* they degraded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Total job re-executions spent on transient failures.
    pub retries: u64,
    /// Distinct jobs that were retried at least once.
    pub retried_jobs: u64,
    /// Jobs that still held a typed error after the retry budget.
    pub failed_jobs: u64,
    /// Panics caught and quarantined to a single job by bisection.
    pub isolated_panics: u64,
    /// `Ok` outputs rejected by shape validation (wrong measured width)
    /// and converted to transient [`RunErrorKind::CorruptOutput`]s.
    pub corrupt_outputs: u64,
    /// Mitigation subsets voided because a job they depend on failed
    /// (filled by `qt_core` recombination; always 0 at the batch layer).
    pub voided_subsets: u64,
}

impl FailureStats {
    /// Whether anything at all went wrong (or was retried).
    pub fn any(&self) -> bool {
        *self != FailureStats::default()
    }

    /// Field-wise sum (accumulating per-batch stats into service totals).
    pub fn merge(&mut self, other: &FailureStats) {
        self.retries += other.retries;
        self.retried_jobs += other.retried_jobs;
        self.failed_jobs += other.failed_jobs;
        self.isolated_panics += other.isolated_panics;
        self.corrupt_outputs += other.corrupt_outputs;
        self.voided_subsets += other.voided_subsets;
    }
}

/// One injected fault, persistent for a given job key within one
/// [`ChaosRunner`] (attempt counters live in the runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the job's first `attempts` executions with a transient
    /// [`RunErrorKind::Backend`] error, then succeed.
    Transient {
        /// Failing executions before the job recovers.
        attempts: u32,
    },
    /// Fail every execution with a permanent [`RunErrorKind::Backend`]
    /// error.
    Fatal,
    /// Panic on every execution (until the caller quarantines the job).
    Panic,
    /// Return a corrupt-shaped output (wrong measured width) for the
    /// job's first `attempts` executions, then succeed.
    Corrupt {
        /// Corrupt executions before the job recovers.
        attempts: u32,
    },
    /// Sleep `millis` before executing (models slow backends; results are
    /// unchanged).
    Latency {
        /// Injected delay per afflicted batch, in milliseconds.
        millis: u64,
    },
}

/// The seeded fault schedule of a [`ChaosRunner`]. Rates are independent
/// per-job probabilities evaluated in a fixed order (panic, fatal,
/// transient, corrupt, latency) against one uniform draw per job key, so
/// the classes are mutually exclusive and their rates sum at most to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule: the fault (if any) a job suffers is a
    /// pure function of `(seed, JobKey)`.
    pub seed: u64,
    /// Probability a job panics on every execution.
    pub panic_rate: f64,
    /// Probability a job fails permanently.
    pub fatal_rate: f64,
    /// Probability a job fails transiently (recovering after a seeded
    /// number of attempts in `1..=max_transient_attempts`).
    pub transient_rate: f64,
    /// Probability a job returns corrupt-shaped outputs before recovering
    /// (same attempt schedule as transient faults).
    pub corrupt_rate: f64,
    /// Probability a job's batch is delayed by `latency_millis`.
    pub latency_rate: f64,
    /// Failing executions a transient/corrupt job suffers before it
    /// recovers, upper bound (the exact count is seeded per job).
    pub max_transient_attempts: u32,
    /// Injected delay for latency faults, in milliseconds.
    pub latency_millis: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            panic_rate: 0.0,
            fatal_rate: 0.0,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            latency_rate: 0.0,
            max_transient_attempts: 2,
            latency_millis: 1,
        }
    }
}

impl ChaosConfig {
    /// A schedule that injects nothing — `ChaosRunner` becomes a
    /// transparent wrapper (the control arm of chaos tests).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }
}

/// Counts of faults a [`ChaosRunner`] actually injected (observability:
/// chaos tests assert their schedule really fired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Panics raised.
    pub panics: u64,
    /// Transient errors returned.
    pub transient_errors: u64,
    /// Permanent errors returned.
    pub fatal_errors: u64,
    /// Corrupt-shaped outputs returned.
    pub corrupt_outputs: u64,
    /// Batch delays applied.
    pub delays: u64,
}

/// SplitMix64-style avalanche used by the fault schedule.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The schedule hash of `(seed, key)`: both 64-bit halves of the job key
/// folded through the avalanche.
fn schedule_hash(seed: u64, key: JobKey) -> u64 {
    let bits = key.bits();
    mix64(mix64(seed.wrapping_add(bits as u64)).wrapping_add((bits >> 64) as u64))
}

/// A deterministic fault-injection [`Runner`] wrapper.
///
/// Faults are scheduled per *job key* from [`ChaosConfig`] (plus explicit
/// [`ChaosRunner::with_fault`] overrides for targeted tests), and attempt
/// counters advance only on the fallible surface
/// ([`Runner::try_run_batch`]), where failure is expressible. The
/// infallible surface injects only the faults it can express — panics and
/// latency — and passes everything else through untouched, so legacy
/// callers see correct results or a crash, never a silent corruption.
///
/// Determinism: given the same `(inner runner, config, overrides)` and the
/// same sequence of executions per job key, a fresh `ChaosRunner` injects
/// the identical fault sequence — chaos runs replay bit for bit.
pub struct ChaosRunner<R> {
    inner: R,
    config: ChaosConfig,
    overrides: HashMap<JobKey, Fault>,
    /// Executions seen per job key on the fallible surface.
    attempts: Mutex<HashMap<JobKey, u32>>,
    panics: AtomicU64,
    transient_errors: AtomicU64,
    fatal_errors: AtomicU64,
    corrupt_outputs: AtomicU64,
    delays: AtomicU64,
}

/// The outcome the chaos schedule picked for one job execution.
enum Injection {
    None,
    Delay(u64),
    Error(RunError),
    Corrupt,
    Panic,
}

impl<R> ChaosRunner<R> {
    /// Wraps `inner` with the fault schedule in `config`.
    pub fn new(inner: R, config: ChaosConfig) -> ChaosRunner<R> {
        ChaosRunner {
            inner,
            config,
            overrides: HashMap::new(),
            attempts: Mutex::new(HashMap::new()),
            panics: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            fatal_errors: AtomicU64::new(0),
            corrupt_outputs: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        }
    }

    /// Pins an explicit fault for one job key, overriding the seeded
    /// schedule (targeted tests: poison exactly this program).
    pub fn with_fault(mut self, key: JobKey, fault: Fault) -> ChaosRunner<R> {
        self.overrides.insert(key, fault);
        self
    }

    /// The wrapped runner.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            panics: self.panics.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            fatal_errors: self.fatal_errors.load(Ordering::Relaxed),
            corrupt_outputs: self.corrupt_outputs.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
        }
    }

    /// Forgets all attempt counters: the next execution of every job key
    /// replays its fault schedule from attempt zero.
    pub fn reset_attempts(&self) {
        lock_recover(&self.attempts).clear();
    }

    /// The fault (if any) the schedule assigns to `key`.
    pub fn fault_for(&self, key: JobKey) -> Option<Fault> {
        if let Some(&f) = self.overrides.get(&key) {
            return Some(f);
        }
        let c = &self.config;
        let h = schedule_hash(c.seed, key);
        // 53 uniform bits, the standard f64-from-u64 construction.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut edge = c.panic_rate;
        if u < edge {
            return Some(Fault::Panic);
        }
        edge += c.fatal_rate;
        if u < edge {
            return Some(Fault::Fatal);
        }
        let attempts = {
            let span = c.max_transient_attempts.max(1) as u64;
            1 + (mix64(h ^ 0xa5a5_a5a5_5a5a_5a5a) % span) as u32
        };
        edge += c.transient_rate;
        if u < edge {
            return Some(Fault::Transient { attempts });
        }
        edge += c.corrupt_rate;
        if u < edge {
            return Some(Fault::Corrupt { attempts });
        }
        edge += c.latency_rate;
        if u < edge {
            return Some(Fault::Latency {
                millis: c.latency_millis,
            });
        }
        None
    }

    /// Resolves the injection for one execution of `job`, advancing its
    /// attempt counter when `count_attempt` is set (fallible surface only
    /// — the infallible surface must not perturb the schedule replayed by
    /// retries).
    fn inject(&self, job: &BatchJob, count_attempt: bool) -> Injection {
        let key = job.dedup_key();
        let Some(fault) = self.fault_for(key) else {
            return Injection::None;
        };
        let attempt = if count_attempt {
            let mut seen = lock_recover(&self.attempts);
            let slot = seen.entry(key).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        } else {
            0
        };
        match fault {
            Fault::Panic => Injection::Panic,
            Fault::Fatal => Injection::Error(RunError::permanent(
                RunErrorKind::Backend,
                format!(
                    "chaos: injected fatal backend error (key {:#x})",
                    key.bits()
                ),
            )),
            Fault::Transient { attempts } if attempt < attempts => {
                Injection::Error(RunError::transient(
                    RunErrorKind::Backend,
                    format!(
                        "chaos: injected transient backend error (attempt {} of {}, key {:#x})",
                        attempt + 1,
                        attempts,
                        key.bits()
                    ),
                ))
            }
            Fault::Corrupt { attempts } if attempt < attempts => Injection::Corrupt,
            Fault::Latency { millis } => Injection::Delay(millis),
            Fault::Transient { .. } | Fault::Corrupt { .. } => Injection::None,
        }
    }

    /// An output whose distribution width disagrees with the job's
    /// measured register — the shape corruption that validation upstream
    /// must catch.
    fn corrupt_output(job: &BatchJob) -> RunOutput {
        let m = job.measured.len();
        let wrong_bits = if m < 64 { m + 1 } else { m - 1 };
        RunOutput {
            dist: Distribution::try_from_entries(wrong_bits, vec![(0, 1.0)])
                .expect("1 <= wrong_bits <= 64"),
            gates: 0,
            two_qubit_gates: 0,
        }
    }
}

impl<R: Runner> Runner for ChaosRunner<R> {
    fn run(&self, program: &crate::Program, measured: &[usize]) -> RunOutput {
        let job = BatchJob::new(program.clone(), measured);
        match self.inject(&job, false) {
            Injection::Panic => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic (key {:#x})", job.dedup_key().bits());
            }
            Injection::Delay(millis) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(millis));
            }
            // The infallible surface cannot express errors; error-class
            // faults pass through clean here and fire on try_run_batch.
            _ => {}
        }
        self.inner.run(program, measured)
    }

    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        let mut delay = 0u64;
        for job in jobs {
            match self.inject(job, false) {
                Injection::Panic => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    panic!("chaos: injected panic (key {:#x})", job.dedup_key().bits());
                }
                Injection::Delay(millis) => delay = delay.max(millis),
                _ => {}
            }
        }
        if delay > 0 {
            self.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(delay));
        }
        self.inner.run_batch(jobs)
    }

    fn try_run_batch(&self, jobs: &[BatchJob]) -> Vec<Result<RunOutput, RunError>> {
        // Resolve every injection (and advance attempt counters) before
        // doing any work, so an injected panic never fires while the
        // attempt lock is held and never leaves counters half-advanced.
        let injections: Vec<Injection> = jobs.iter().map(|j| self.inject(j, true)).collect();

        for (job, inj) in jobs.iter().zip(&injections) {
            if matches!(inj, Injection::Panic) {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic (key {:#x})", job.dedup_key().bits());
            }
        }
        let delay = injections
            .iter()
            .filter_map(|i| match i {
                Injection::Delay(ms) => Some(*ms),
                _ => None,
            })
            .max();
        if let Some(millis) = delay {
            self.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(millis));
        }

        // Delegate the surviving jobs in ONE inner batch, preserving
        // whatever prefix sharing / grouping the wrapped runner does.
        let healthy: Vec<usize> = injections
            .iter()
            .enumerate()
            .filter(|(_, inj)| matches!(inj, Injection::None | Injection::Delay(_)))
            .map(|(i, _)| i)
            .collect();
        let healthy_jobs: Vec<BatchJob> = healthy.iter().map(|&i| jobs[i].clone()).collect();
        let mut inner_results = self.inner.try_run_batch(&healthy_jobs).into_iter();

        injections
            .into_iter()
            .enumerate()
            .map(|(i, inj)| match inj {
                Injection::None | Injection::Delay(_) => inner_results
                    .next()
                    .expect("inner runner returned one result per job"),
                Injection::Error(e) => {
                    if e.transient {
                        self.transient_errors.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.fatal_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e)
                }
                Injection::Corrupt => {
                    self.corrupt_outputs.fetch_add(1, Ordering::Relaxed);
                    Ok(Self::corrupt_output(&jobs[i]))
                }
                Injection::Panic => unreachable!("panics fired above"),
            })
            .collect()
    }

    fn engine_mix(&self, jobs: &[BatchJob]) -> Option<Vec<(String, usize)>> {
        self.inner.engine_mix(jobs)
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock (see
/// [`crate::sync`] — this module keeps its own copy to avoid a cyclic
/// import during bootstrap).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Best-effort single-line rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a batch with panic quarantine: a panic anywhere in the submission
/// is caught and bisected down to the single job that raised it, which
/// fails with a typed [`RunErrorKind::Panic`]; every other job is
/// re-executed in panic-free sub-batches. Because `run_batch` is
/// bit-identical for any composition of the same jobs (the trie-merge
/// invariant), the healthy jobs' outputs are exactly what a fault-free
/// batch would have produced.
///
/// Returns the per-job results plus the number of quarantined panics.
/// Cost: a poisoned batch of `n` jobs re-executes healthy work across
/// `O(log n)` bisection levels — acceptable because panics are the rare
/// terminal fault, not the common case.
pub fn try_run_batch_isolated<R: Runner + ?Sized>(
    runner: &R,
    jobs: &[BatchJob],
) -> (Vec<Result<RunOutput, RunError>>, u64) {
    if jobs.is_empty() {
        return (Vec::new(), 0);
    }
    match catch_unwind(AssertUnwindSafe(|| runner.try_run_batch(jobs))) {
        Ok(results) if results.len() == jobs.len() => (results, 0),
        Ok(results) => {
            // Contract violation: the runner lost or invented results, so
            // no per-job attribution is possible. Fail the whole
            // submission with a permanent typed error.
            let err = RunError::permanent(
                RunErrorKind::Backend,
                format!(
                    "runner returned {} results for {} jobs",
                    results.len(),
                    jobs.len()
                ),
            );
            (vec![Err(err); jobs.len()], 0)
        }
        Err(payload) => {
            if jobs.len() == 1 {
                let err = RunError::panic(format!(
                    "job panicked during execution: {}",
                    panic_message(payload.as_ref())
                ));
                (vec![Err(err)], 1)
            } else {
                let mid = jobs.len() / 2;
                let (mut left, p_left) = try_run_batch_isolated(runner, &jobs[..mid]);
                let (right, p_right) = try_run_batch_isolated(runner, &jobs[mid..]);
                left.extend(right);
                (left, p_left + p_right)
            }
        }
    }
}

/// Converts `Ok` outputs whose distribution width disagrees with the
/// job's measured register into transient [`RunErrorKind::CorruptOutput`]
/// errors (counted in `stats`). Runs after every execution round so a
/// corrupt readback gets the same retry treatment as a transient error.
fn validate_shapes(
    jobs: &[BatchJob],
    results: &mut [Result<RunOutput, RunError>],
    stats: &mut FailureStats,
) {
    for (job, res) in jobs.iter().zip(results.iter_mut()) {
        if let Ok(out) = res {
            let want = job.measured.len();
            let got = out.dist.n_bits();
            if got != want {
                stats.corrupt_outputs += 1;
                *res = Err(RunError::transient(
                    RunErrorKind::CorruptOutput,
                    format!("output has {got} measured bits, job measures {want}"),
                ));
            }
        }
    }
}

/// The full failure-domain engine: panic quarantine
/// ([`try_run_batch_isolated`]), corrupt-shape validation, and bounded
/// retry-with-backoff for transient errors, re-submitting only the failed
/// jobs as one sub-batch per attempt.
///
/// Determinism: every surviving `Ok` output is bit-identical to the
/// fault-free run of the same job list — retries re-execute deterministic
/// jobs, backoff only delays them, and quarantine re-runs healthy jobs in
/// composition-invariant sub-batches. With a fault schedule whose
/// transient attempts fit inside `policy.max_attempts`, the whole result
/// vector is therefore bit-identical to the fault-free run.
pub fn try_run_batch_resilient<R: Runner + ?Sized>(
    runner: &R,
    jobs: &[BatchJob],
    policy: &RetryPolicy,
) -> (Vec<Result<RunOutput, RunError>>, FailureStats) {
    let mut stats = FailureStats::default();
    let (mut results, panics) = try_run_batch_isolated(runner, jobs);
    stats.isolated_panics += panics;
    validate_shapes(jobs, &mut results, &mut stats);

    let mut pending: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Err(e) if e.transient))
        .map(|(i, _)| i)
        .collect();

    for attempt in 2..=policy.max_attempts {
        if pending.is_empty() {
            break;
        }
        if attempt == 2 {
            stats.retried_jobs = pending.len() as u64;
        }
        if let Some(backoff) = policy.backoff_before(attempt) {
            std::thread::sleep(backoff);
        }
        stats.retries += pending.len() as u64;
        let retry_jobs: Vec<BatchJob> = pending.iter().map(|&i| jobs[i].clone()).collect();
        let (mut retry_results, panics) = try_run_batch_isolated(runner, &retry_jobs);
        stats.isolated_panics += panics;
        validate_shapes(&retry_jobs, &mut retry_results, &mut stats);

        let mut still_pending = Vec::new();
        for (&slot, res) in pending.iter().zip(retry_results) {
            if matches!(&res, Err(e) if e.transient) {
                still_pending.push(slot);
            }
            results[slot] = res;
        }
        pending = still_pending;
    }

    stats.failed_jobs = results.iter().filter(|r| r.is_err()).count() as u64;
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Executor, NoiseModel, Program};
    use qt_circuit::Circuit;

    fn executor() -> Executor {
        Executor::with_backend(
            NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
            Backend::DensityMatrix,
        )
    }

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                let mut c = Circuit::new(2);
                c.h(0).cx(0, 1).rz(1, 0.1 + i as f64 * 0.07);
                BatchJob::new(Program::from_circuit(&c), vec![0, 1])
            })
            .collect()
    }

    fn assert_outputs_identical(a: &RunOutput, b: &RunOutput, what: &str) {
        let xs: Vec<(u64, u64)> = a.dist.iter().map(|(i, p)| (i, p.to_bits())).collect();
        let ys: Vec<(u64, u64)> = b.dist.iter().map(|(i, p)| (i, p.to_bits())).collect();
        assert_eq!(xs, ys, "{what}: distributions differ");
        assert_eq!(a.gates, b.gates, "{what}: gate counts differ");
    }

    #[test]
    fn quiet_chaos_is_transparent() {
        let batch = jobs(4);
        let clean = executor().run_batch(&batch);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(9));
        let wrapped = chaos.try_run_batch(&batch);
        assert_eq!(wrapped.len(), clean.len());
        for (i, (w, c)) in wrapped.iter().zip(&clean).enumerate() {
            assert_outputs_identical(w.as_ref().unwrap(), c, &format!("job {i}"));
        }
        assert_eq!(chaos.injected(), InjectedFaults::default());
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_seed_and_key() {
        let cfg = ChaosConfig {
            seed: 42,
            transient_rate: 0.3,
            fatal_rate: 0.2,
            panic_rate: 0.1,
            corrupt_rate: 0.2,
            latency_rate: 0.1,
            ..ChaosConfig::default()
        };
        let a = ChaosRunner::new(executor(), cfg);
        let b = ChaosRunner::new(executor(), cfg);
        let batch = jobs(32);
        let mut classes = std::collections::HashSet::new();
        for job in &batch {
            let key = job.dedup_key();
            assert_eq!(a.fault_for(key), b.fault_for(key), "schedule must be pure");
            classes.insert(std::mem::discriminant(
                &a.fault_for(key).unwrap_or(Fault::Fatal),
            ));
        }
        // With 32 keys and every class at >= 10%, the schedule should hit
        // more than one fault class (sanity: rates actually matter).
        assert!(classes.len() > 1, "schedule degenerated to one class");
    }

    #[test]
    fn transient_fault_fails_exactly_k_attempts_then_recovers_bit_identically() {
        let batch = jobs(1);
        let key = batch[0].dedup_key();
        let clean = executor().run_batch(&batch);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(0))
            .with_fault(key, Fault::Transient { attempts: 2 });
        for attempt in 0..2 {
            let res = chaos.try_run_batch(&batch);
            assert!(
                matches!(&res[0], Err(e) if e.transient && e.kind == RunErrorKind::Backend),
                "attempt {attempt} should fail transiently, got {:?}",
                res[0]
            );
        }
        let res = chaos.try_run_batch(&batch);
        assert_outputs_identical(res[0].as_ref().unwrap(), &clean[0], "recovered attempt");
        assert_eq!(chaos.injected().transient_errors, 2);
    }

    #[test]
    fn resilient_retry_recovers_transients_within_budget() {
        let batch = jobs(5);
        let clean = executor().run_batch(&batch);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(0))
            .with_fault(batch[1].dedup_key(), Fault::Transient { attempts: 2 })
            .with_fault(batch[3].dedup_key(), Fault::Corrupt { attempts: 1 });
        let (results, stats) = try_run_batch_resilient(&chaos, &batch, &RetryPolicy::immediate(3));
        for (i, (r, c)) in results.iter().zip(&clean).enumerate() {
            assert_outputs_identical(r.as_ref().unwrap(), c, &format!("job {i}"));
        }
        assert_eq!(stats.retried_jobs, 2);
        assert_eq!(stats.retries, 3, "job 1 retried twice, job 3 once");
        assert_eq!(stats.corrupt_outputs, 1);
        assert_eq!(stats.failed_jobs, 0);
    }

    #[test]
    fn resilient_retry_gives_up_past_budget_with_typed_error() {
        let batch = jobs(2);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(0))
            .with_fault(batch[0].dedup_key(), Fault::Transient { attempts: 5 });
        let (results, stats) = try_run_batch_resilient(&chaos, &batch, &RetryPolicy::immediate(3));
        assert!(
            matches!(&results[0], Err(e) if e.transient),
            "exhausted budget must surface the typed transient error"
        );
        assert!(results[1].is_ok(), "healthy cohabitant must survive");
        assert_eq!(stats.failed_jobs, 1);
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn bisection_quarantines_the_panicking_job_only() {
        let batch = jobs(6);
        let clean = executor().run_batch(&batch);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(0))
            .with_fault(batch[2].dedup_key(), Fault::Panic);
        let (results, panics) = try_run_batch_isolated(&chaos, &batch);
        assert_eq!(panics, 1);
        for (i, (r, c)) in results.iter().zip(&clean).enumerate() {
            if i == 2 {
                assert!(
                    matches!(r, Err(e) if e.kind == RunErrorKind::Panic && !e.transient),
                    "poisoned job must fail with a typed quarantined panic, got {r:?}"
                );
            } else {
                assert_outputs_identical(
                    r.as_ref().unwrap(),
                    c,
                    &format!("healthy cohabitant {i}"),
                );
            }
        }
    }

    #[test]
    fn fatal_faults_are_permanent_and_never_retried() {
        let batch = jobs(2);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(0))
            .with_fault(batch[0].dedup_key(), Fault::Fatal);
        let (results, stats) = try_run_batch_resilient(&chaos, &batch, &RetryPolicy::immediate(4));
        assert!(matches!(&results[0], Err(e) if !e.transient));
        assert_eq!(stats.retries, 0, "permanent errors must not consume budget");
        assert_eq!(chaos.injected().fatal_errors, 1);
    }

    #[test]
    fn corrupt_shapes_are_detected_and_become_transient_errors() {
        let batch = jobs(1);
        let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(0))
            .with_fault(batch[0].dedup_key(), Fault::Corrupt { attempts: 10 });
        let (results, stats) = try_run_batch_resilient(&chaos, &batch, &RetryPolicy::immediate(2));
        assert!(
            matches!(&results[0], Err(e) if e.kind == RunErrorKind::CorruptOutput && e.transient),
            "corrupt output past budget must surface as typed CorruptOutput"
        );
        assert_eq!(stats.corrupt_outputs, 2, "one per attempt");
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(policy.backoff_before(1), None);
        assert_eq!(policy.backoff_before(2), Some(Duration::from_millis(4)));
        assert_eq!(policy.backoff_before(3), Some(Duration::from_millis(8)));
        assert_eq!(policy.backoff_before(4), Some(Duration::from_millis(10)));
        assert_eq!(RetryPolicy::immediate(3).backoff_before(2), None);
    }
}
