//! Poison-recovering lock helpers.
//!
//! A `std::sync::Mutex` poisons itself when a holder panics, and every
//! later `.lock().unwrap()` then panics too — one crashed request thread
//! cascades into crashing every other thread that touches the structure.
//! With panic isolation in the failure domain (see [`crate::fault`]) a
//! caught panic is a *recoverable* event, so the shared structures it may
//! have touched must stay usable.
//!
//! # Recovery invariant
//!
//! Recovering a poisoned guard is only sound if every critical section
//! leaves the protected structure consistent at each point where it could
//! panic. All workspace users of these helpers satisfy that by
//! construction, in one of two ways:
//!
//! * **single-call mutations** — the section performs one insert / remove /
//!   push / state overwrite on an always-valid collection (job maps, the
//!   bounded queue, LRU shards), so there is no intermediate state to
//!   observe; or
//! * **mutate-last** — fallible/panicky work (allocation, execution) runs
//!   *before* the lock is taken, and the section only publishes finished
//!   values.
//!
//! Under that discipline the worst outcome of a panicked holder is a lost
//! in-progress update from the panicking thread — never a torn structure —
//! so recovering the guard and continuing is strictly better than
//! cascading the panic.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// `Mutex` extension: lock, recovering the guard if a previous holder
/// panicked (see the module-level recovery invariant).
pub trait LockRecoverExt<T> {
    /// Locks, treating poisoning as recovered.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockRecoverExt<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`Condvar::wait`] with the same poison recovery as
/// [`LockRecoverExt::lock_recover`].
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery as
/// [`LockRecoverExt::lock_recover`].
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn poisoned_lock_recovers_with_consistent_data() {
        let m = Mutex::new(vec![1, 2, 3]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("holder dies");
        }));
        assert!(result.is_err());
        assert!(m.is_poisoned());
        let guard = m.lock_recover();
        assert_eq!(*guard, vec![1, 2, 3]);
    }
}
