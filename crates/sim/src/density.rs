//! Exact mixed-state simulation.
//!
//! The density matrix of an `n`-qubit register is stored as a flat array of
//! `4^n` amplitudes indexed by `row | (col << n)` — i.e. as a state vector on
//! `2n` virtual qubits. A unitary `U` on qubits `qs` becomes `U` on the row
//! bits and `conj(U)` on the column bits, so the state-vector kernel is
//! reused verbatim; Kraus channels are sums of such applications.

use crate::kernel;
use crate::statevector::StateVector;
use qt_circuit::{Circuit, Instruction};
use qt_math::{Complex, Matrix};

/// Maximum register size accepted by the density-matrix engine
/// (`4^12 = 16.8M` amplitudes ≈ 268 MB).
pub const MAX_QUBITS: usize = 12;

/// An `n`-qubit density matrix.
///
/// # Example
///
/// ```
/// use qt_sim::DensityMatrix;
/// use qt_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let rho = DensityMatrix::from_circuit(&bell);
/// assert!((rho.purity() - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    amps: Vec<Complex>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(
            n <= MAX_QUBITS,
            "register too large for exact DM: {n} qubits"
        );
        let mut amps = vec![Complex::ZERO; 1 << (2 * n)];
        amps[0] = Complex::ONE;
        DensityMatrix { n, amps }
    }

    /// Runs `circ` noiselessly from `|0…0⟩`.
    pub fn from_circuit(circ: &Circuit) -> Self {
        let mut rho = DensityMatrix::zero(circ.n_qubits());
        for instr in circ.instructions() {
            rho.apply_instruction(instr);
        }
        rho
    }

    /// Converts a pure state to a density matrix.
    pub fn from_statevector(sv: &StateVector) -> Self {
        let n = sv.n_qubits();
        assert!(n <= MAX_QUBITS);
        let a = sv.amplitudes();
        let dim = 1usize << n;
        let mut amps = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            if a[r] == Complex::ZERO {
                continue;
            }
            for c in 0..dim {
                amps[r | (c << n)] = a[r] * a[c].conj();
            }
        }
        DensityMatrix { n, amps }
    }

    /// Builds a density matrix from an explicit (small) matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square with power-of-two dimension.
    pub fn from_matrix(m: &Matrix) -> Self {
        assert!(m.is_square());
        let dim = m.rows();
        assert!(dim.is_power_of_two());
        let n = dim.trailing_zeros() as usize;
        assert!(n <= MAX_QUBITS);
        let mut amps = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                amps[r | (c << n)] = m[(r, c)];
            }
        }
        DensityMatrix { n, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Extracts the dense matrix (small registers only).
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` (the matrix would be enormous).
    pub fn to_matrix(&self) -> Matrix {
        assert!(self.n <= 8, "to_matrix() only for small registers");
        let dim = 1usize << self.n;
        let mut m = Matrix::zeros(dim, dim);
        for r in 0..dim {
            for c in 0..dim {
                m[(r, c)] = self.amps[r | (c << self.n)];
            }
        }
        m
    }

    /// Applies a unitary operator on `qubits`: the operator is classified
    /// once and the matching specialized kernel runs on the row side and
    /// (conjugated) on the column side.
    pub fn apply_unitary(&mut self, u: &Matrix, qubits: &[usize]) {
        self.apply_class_two_sided(&kernel::KernelClass::classify(u), qubits);
    }

    /// Applies a pre-classified operator to both sides of the vectorized
    /// density matrix: `class` on the row bits, `class.conj()` on the
    /// column bits.
    fn apply_class_two_sided(&mut self, class: &kernel::KernelClass, qubits: &[usize]) {
        let col_qubits: Vec<usize> = qubits.iter().map(|&q| q + self.n).collect();
        kernel::apply_classified(&mut self.amps, 2 * self.n, class, qubits);
        kernel::apply_classified(&mut self.amps, 2 * self.n, &class.conj(), &col_qubits);
    }

    /// Applies one circuit instruction (unitarily).
    pub fn apply_instruction(&mut self, instr: &Instruction) {
        let class = kernel::KernelClass::for_gate(&instr.gate);
        self.apply_class_two_sided(&class, &instr.qubits);
    }

    /// Applies a noise channel, dispatching to the depolarizing fast path
    /// when available.
    pub fn apply_channel(&mut self, channel: &crate::noise::KrausChannel, qubits: &[usize]) {
        match channel.kind() {
            crate::noise::ChannelKind::Depolarizing { p } => {
                self.apply_depolarizing(qubits, p);
            }
            crate::noise::ChannelKind::General => self.apply_kraus(channel.ops(), qubits),
        }
    }

    /// Depolarizing fast path via the twirl identity:
    /// `ρ → (1−λ)ρ + λ·(I/2^k ⊗ tr_q ρ)` with `λ = 4^k·p / (4^k − 1)`.
    ///
    /// Runs fully in place: for each pair of rest-register indices the
    /// subset trace is a scalar, so no clone of the register (or any
    /// full-size scratch buffer) is needed.
    pub fn apply_depolarizing(&mut self, qubits: &[usize], p: f64) {
        if p <= 0.0 {
            return;
        }
        let k = qubits.len();
        let dim_local = 1usize << k;
        let lambda = (dim_local * dim_local) as f64 * p / ((dim_local * dim_local - 1) as f64);
        let keep = 1.0 - lambda;
        let mix = lambda / dim_local as f64;

        // Operand bit positions on the row and column side of the flat
        // `row | (col << n)` index.
        let mut all: Vec<usize> = qubits.iter().flat_map(|&q| [q, q + self.n]).collect();
        all.sort_unstable();
        let row_offsets = kernel::local_offsets_shifted(qubits, 0);
        let col_offsets = kernel::local_offsets_shifted(qubits, self.n);

        let outer = self.amps.len() >> (2 * k);
        for o in 0..outer {
            let base = kernel::expand_index(o, &all);
            // Subset trace for this (row-rest, col-rest) pair.
            let mut t = Complex::ZERO;
            for (ro, co) in row_offsets.iter().zip(&col_offsets) {
                t += self.amps[base | ro | co];
            }
            let tmix = t.scale(mix);
            for (xr, ro) in row_offsets.iter().enumerate() {
                for (xc, co) in col_offsets.iter().enumerate() {
                    let idx = base | ro | co;
                    let mut v = self.amps[idx].scale(keep);
                    if xr == xc {
                        v += tmix;
                    }
                    self.amps[idx] = v;
                }
            }
        }
    }

    /// Applies a Kraus channel `ρ → Σᵢ Kᵢ ρ Kᵢ†` on `qubits`.
    ///
    /// Each operator is classified once and applied through the specialized
    /// kernels; a single scratch buffer is reused across terms instead of
    /// cloning the register once per Kraus operator.
    pub fn apply_kraus(&mut self, kraus: &[Matrix], qubits: &[usize]) {
        let classes: Vec<kernel::KernelClass> =
            kraus.iter().map(kernel::KernelClass::classify).collect();
        if let [class] = classes.as_slice() {
            // A single Kraus term acts like a (possibly non-unitary) gate.
            self.apply_class_two_sided(class, qubits);
            return;
        }
        let col_qubits: Vec<usize> = qubits.iter().map(|&q| q + self.n).collect();
        let mut acc = vec![Complex::ZERO; self.amps.len()];
        let mut scratch = vec![Complex::ZERO; self.amps.len()];
        for class in &classes {
            scratch.copy_from_slice(&self.amps);
            kernel::apply_classified(&mut scratch, 2 * self.n, class, qubits);
            kernel::apply_classified(&mut scratch, 2 * self.n, &class.conj(), &col_qubits);
            for (a, t) in acc.iter_mut().zip(&scratch) {
                *a += *t;
            }
        }
        self.amps = acc;
    }

    /// The diagonal (outcome probabilities in the computational basis).
    pub fn diagonal(&self) -> Vec<f64> {
        let dim = 1usize << self.n;
        (0..dim).map(|i| self.amps[i | (i << self.n)].re).collect()
    }

    /// Marginal outcome probabilities over `subset`
    /// (output bit `i` = `subset[i]`).
    pub fn marginal_probabilities(&self, subset: &[usize]) -> Vec<f64> {
        let diag = self.diagonal();
        let mut out = vec![0.0; 1 << subset.len()];
        for (idx, p) in diag.iter().enumerate() {
            let mut key = 0usize;
            for (pos, &q) in subset.iter().enumerate() {
                if (idx >> q) & 1 == 1 {
                    key |= 1 << pos;
                }
            }
            out[key] += p;
        }
        out
    }

    /// Trace of the density matrix (1 for a normalized state; the QSPC
    /// denominator uses unnormalized branches).
    pub fn trace(&self) -> Complex {
        let dim = 1usize << self.n;
        (0..dim).map(|i| self.amps[i | (i << self.n)]).sum()
    }

    /// Purity `tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        // tr(ρ²) = Σ_{r,c} ρ[r,c]·ρ[c,r] = Σ |ρ[r,c]|² for Hermitian ρ.
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Expectation `tr(ρ · Op)` of a local operator on `qubits`.
    pub fn expectation_local(&self, op: &Matrix, qubits: &[usize]) -> Complex {
        let k = qubits.len();
        assert_eq!(op.rows(), 1 << k);
        let dim_local = 1usize << k;
        let mut sorted = qubits.to_vec();
        sorted.sort_unstable();
        let mut offsets = vec![0usize; dim_local];
        for (l, off) in offsets.iter_mut().enumerate() {
            for (pos, &q) in qubits.iter().enumerate() {
                if (l >> pos) & 1 == 1 {
                    *off |= 1 << q;
                }
            }
        }
        let mut acc = Complex::ZERO;
        let outer = 1usize << (self.n - k);
        for i in 0..outer {
            let mut base = i;
            for &q in &sorted {
                let low = base & ((1usize << q) - 1);
                base = ((base >> q) << (q + 1)) | low;
            }
            // tr(ρA) = Σ_{r,c} ρ[r,c] A[c,r]
            for r in 0..dim_local {
                for c in 0..dim_local {
                    let a = op[(c, r)];
                    if a == Complex::ZERO {
                        continue;
                    }
                    let rho = self.amps[(base | offsets[r]) | ((base | offsets[c]) << self.n)];
                    acc += rho * a;
                }
            }
        }
        acc
    }

    /// Partial trace keeping only `keep` (in the given order: output qubit
    /// `i` = `keep[i]`).
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        let k = keep.len();
        let traced: Vec<usize> = (0..self.n).filter(|q| !keep.contains(q)).collect();
        let dim_keep = 1usize << k;
        let mut out = vec![Complex::ZERO; dim_keep * dim_keep];
        let expand = |bits_keep: usize, bits_traced: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                if (bits_keep >> pos) & 1 == 1 {
                    idx |= 1 << q;
                }
            }
            for (pos, &q) in traced.iter().enumerate() {
                if (bits_traced >> pos) & 1 == 1 {
                    idx |= 1 << q;
                }
            }
            idx
        };
        for r in 0..dim_keep {
            for c in 0..dim_keep {
                let mut acc = Complex::ZERO;
                for x in 0..(1usize << traced.len()) {
                    let rf = expand(r, x);
                    let cf = expand(c, x);
                    acc += self.amps[rf | (cf << self.n)];
                }
                out[r | (c << k)] = acc;
            }
        }
        DensityMatrix { n: k, amps: out }
    }

    /// Replaces the state of `qubits` by `rho_small` (any density matrix of
    /// dimension `2^k`), tracing out their previous contents:
    /// `ρ → tr_qs(ρ) ⊗ ρ_small`.
    pub fn reset_qubits(&mut self, qubits: &[usize], rho_small: &Matrix) {
        let k = qubits.len();
        assert_eq!(rho_small.rows(), 1 << k, "reset state dimension mismatch");
        let rest: Vec<usize> = (0..self.n).filter(|q| !qubits.contains(q)).collect();
        let reduced = self.partial_trace(&rest);
        // reduced is on `rest` in order; rebuild the full matrix.
        let dim = 1usize << self.n;
        let mut out = vec![Complex::ZERO; dim * dim];
        let nr = rest.len();
        for rr in 0..(1usize << nr) {
            for cr in 0..(1usize << nr) {
                let base_val = reduced.amps[rr | (cr << nr)];
                if base_val == Complex::ZERO {
                    continue;
                }
                let mut rfull0 = 0usize;
                let mut cfull0 = 0usize;
                for (pos, &q) in rest.iter().enumerate() {
                    if (rr >> pos) & 1 == 1 {
                        rfull0 |= 1 << q;
                    }
                    if (cr >> pos) & 1 == 1 {
                        cfull0 |= 1 << q;
                    }
                }
                for rq in 0..(1usize << k) {
                    for cq in 0..(1usize << k) {
                        let sv = rho_small[(rq, cq)];
                        if sv == Complex::ZERO {
                            continue;
                        }
                        let mut rfull = rfull0;
                        let mut cfull = cfull0;
                        for (pos, &q) in qubits.iter().enumerate() {
                            if (rq >> pos) & 1 == 1 {
                                rfull |= 1 << q;
                            }
                            if (cq >> pos) & 1 == 1 {
                                cfull |= 1 << q;
                            }
                        }
                        out[rfull | (cfull << self.n)] = base_val * sv;
                    }
                }
            }
        }
        self.amps = out;
    }

    /// Scales the density matrix (used for unnormalized QSPC branches).
    pub fn scale(&mut self, c: Complex) {
        for a in &mut self.amps {
            *a *= c;
        }
    }

    /// Adds `other` (element-wise) into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn add_assign(&mut self, other: &DensityMatrix) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.amps.iter_mut().zip(&other.amps) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_math::states::PrepState;

    #[test]
    fn matches_statevector_on_random_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.8).cz(1, 2).rz(0, 0.3).cx(2, 0);
        let sv = StateVector::from_circuit(&c);
        let rho = DensityMatrix::from_circuit(&c);
        let probs_sv = sv.probabilities();
        let probs_dm = rho.diagonal();
        for (a, b) in probs_sv.iter().zip(probs_dm) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_kraus_mixes_state() {
        let mut rho = DensityMatrix::zero(1);
        // Full depolarizing: p = 1 sends any state to I/2 on one qubit.
        let p: f64 = 1.0;
        let k = vec![
            Matrix::identity(2).scale(Complex::real((1.0 - 3.0 * p / 4.0).sqrt())),
            qt_math::pauli::x2().scale(Complex::real((p / 4.0).sqrt())),
            qt_math::pauli::y2().scale(Complex::real((p / 4.0).sqrt())),
            qt_math::pauli::z2().scale(Complex::real((p / 4.0).sqrt())),
        ];
        rho.apply_kraus(&k, &[0]);
        let d = rho.diagonal();
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_in_place_matches_explicit_pauli_kraus() {
        // Regression: the fast path used to clone the whole register; the
        // in-place rewrite must still equal the explicit Pauli-Kraus sum on
        // a correlated state, for both 1- and 2-qubit subsets.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.8).cz(1, 2).t(0);
        let p: f64 = 0.07;
        // Single-qubit subset.
        let k1 = vec![
            Matrix::identity(2).scale(Complex::real((1.0 - p).sqrt())),
            qt_math::pauli::x2().scale(Complex::real((p / 3.0).sqrt())),
            qt_math::pauli::y2().scale(Complex::real((p / 3.0).sqrt())),
            qt_math::pauli::z2().scale(Complex::real((p / 3.0).sqrt())),
        ];
        let mut fast = DensityMatrix::from_circuit(&c);
        let mut slow = fast.clone();
        fast.apply_depolarizing(&[1], p);
        slow.apply_kraus(&k1, &[1]);
        assert!(fast.to_matrix().approx_eq(&slow.to_matrix(), 1e-12));
        // Two-qubit subset: all 16 two-qubit Paulis.
        let paulis = [
            Matrix::identity(2),
            qt_math::pauli::x2(),
            qt_math::pauli::y2(),
            qt_math::pauli::z2(),
        ];
        let mut k2 = Vec::new();
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate() {
                let w = if i == 0 && j == 0 { 1.0 - p } else { p / 15.0 };
                k2.push(b.kron(a).scale(Complex::real(w.sqrt())));
            }
        }
        let mut fast = DensityMatrix::from_circuit(&c);
        let mut slow = fast.clone();
        fast.apply_depolarizing(&[2, 0], p);
        slow.apply_kraus(&k2, &[2, 0]);
        assert!(fast.to_matrix().approx_eq(&slow.to_matrix(), 1e-12));
        assert!((fast.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_kraus_term_applies_in_place() {
        // A one-element Kraus list (e.g. a projector branch) takes the
        // allocation-free path and must match the generic sum.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let k = vec![Matrix::mat2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(0.5),
        )];
        let mut fast = DensityMatrix::from_circuit(&c);
        let mut slow = fast.clone();
        fast.apply_kraus(&k, &[0]);
        // Reference: embed and conjugate explicitly.
        let u = qt_circuit::embed(&k[0], &[0], 2);
        let m = u.mul(&slow.to_matrix()).mul(&u.dagger());
        slow = DensityMatrix::from_matrix(&m);
        assert!(fast.to_matrix().approx_eq(&slow.to_matrix(), 1e-12));
    }

    #[test]
    fn partial_trace_of_bell_is_maximally_mixed() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let rho = DensityMatrix::from_circuit(&c);
        let r0 = rho.partial_trace(&[0]);
        let m = r0.to_matrix();
        assert!(m[(0, 0)].approx_eq(Complex::real(0.5), 1e-12));
        assert!(m[(1, 1)].approx_eq(Complex::real(0.5), 1e-12));
        assert!(m[(0, 1)].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn reset_severs_correlations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rho = DensityMatrix::from_circuit(&c);
        rho.reset_qubits(&[0], &PrepState::Plus.projector());
        // Qubit 0 now |+⟩, qubit 1 maximally mixed, product state.
        let q0 = rho.partial_trace(&[0]).to_matrix();
        assert!(q0.approx_eq(&PrepState::Plus.projector(), 1e-10));
        let q1 = rho.partial_trace(&[1]).to_matrix();
        assert!(q1[(0, 0)].approx_eq(Complex::real(0.5), 1e-10));
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
        // Product structure: ⟨X₀ Z₁⟩ = ⟨X₀⟩⟨Z₁⟩ = 1·0 = 0.
        let xz = qt_math::pauli::z2().kron(&qt_math::pauli::x2());
        assert!(rho
            .expectation_local(&xz, &[0, 1])
            .approx_eq(Complex::ZERO, 1e-10));
    }

    #[test]
    fn expectation_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 1.1).cz(0, 2);
        let sv = StateVector::from_circuit(&c);
        let rho = DensityMatrix::from_circuit(&c);
        let op = qt_math::pauli::x2().kron(&qt_math::pauli::z2()); // Z on first operand, X on second
        let a = sv.expectation_local(&op, &[0, 2]);
        let b = rho.expectation_local(&op, &[0, 2]);
        assert!(a.approx_eq(b, 1e-10));
    }

    #[test]
    fn marginals_match_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2).ry(1, 0.5);
        let sv = StateVector::from_circuit(&c);
        let rho = DensityMatrix::from_circuit(&c);
        let a = sv.marginal_probabilities(&[2, 1]);
        let b = rho.marginal_probabilities(&[2, 1]);
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn from_matrix_round_trip() {
        let m = PrepState::PlusI.projector();
        let rho = DensityMatrix::from_matrix(&m);
        assert!(rho.to_matrix().approx_eq(&m, 1e-12));
    }
}
