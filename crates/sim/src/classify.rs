//! One-pass per-program classification for automatic engine selection.
//!
//! [`ProgramProfile`] captures the structural facts `Backend::Auto` needs to
//! pick the cheapest admissible engine for a job: whether the op stream is
//! all-Clifford (stabilizer-tableau admissible), whether it contains resets
//! (mixed-state only), and how many ops can grow superposition (an upper
//! bound on the branching factor a sparse statevector evolution pays).
//!
//! The profile is a function of the op stream's *structure* only — gate
//! variants and parameters, never operand indices — so it is invariant under
//! qubit remapping and register compaction, and can be computed once per
//! deduplicated [`crate::BatchJob`] and reused for the compacted program.

use crate::program::{Op, Program};
use qt_circuit::GateStructure;

/// A one-pass structural profile of a [`Program`] — everything automatic
/// engine selection needs, cached per batch job (see
/// [`crate::BatchJob::profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramProfile {
    /// Register size of the profiled program.
    pub n_qubits: usize,
    /// Whether the program contains any mid-circuit reset (forces a
    /// mixed-state representation).
    pub has_resets: bool,
    /// Whether every gate (noisy or ideal) is recognizably Clifford
    /// (see [`qt_circuit::Gate::clifford_class`]).
    pub all_clifford: bool,
    /// Number of ops whose matrix is dense on at least one operand axis
    /// (`SingleQubitDense` / `ControlledDense` / `Dense` structure).
    /// Starting from a basis state, each such op at most doubles the number
    /// of nonzero amplitudes, so `2^superposing_ops` bounds the support a
    /// sparse statevector evolution can reach; diagonal and permutation
    /// gates never grow support.
    pub superposing_ops: usize,
}

impl ProgramProfile {
    /// Profiles `program` in one pass over its ops.
    pub fn of(program: &Program) -> Self {
        let mut has_resets = false;
        let mut all_clifford = true;
        let mut superposing_ops = 0usize;
        for op in program.ops() {
            match op {
                Op::Gate(i) | Op::IdealGate(i) => {
                    if all_clifford && !i.gate.is_clifford() {
                        all_clifford = false;
                    }
                    if matches!(
                        i.gate.structure(),
                        GateStructure::SingleQubitDense
                            | GateStructure::ControlledDense
                            | GateStructure::Dense
                    ) {
                        superposing_ops += 1;
                    }
                }
                Op::Reset { .. } => has_resets = true,
            }
        }
        ProgramProfile {
            n_qubits: program.n_qubits(),
            has_resets,
            all_clifford,
            superposing_ops,
        }
    }

    /// An upper bound on the log2 of the statevector support the program
    /// can build from `|0…0⟩`, clamped to the register size.
    pub fn support_bound_log2(&self) -> usize {
        self.superposing_ops.min(self.n_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Circuit;
    use qt_math::states::PrepState;

    #[test]
    fn clifford_circuit_profiles_clifford() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).s(1).cz(1, 2).swap(2, 3);
        let p = ProgramProfile::of(&Program::from_circuit(&c));
        assert_eq!(p.n_qubits, 4);
        assert!(p.all_clifford);
        assert!(!p.has_resets);
        assert_eq!(p.superposing_ops, 1, "only the H is dense");
    }

    #[test]
    fn non_clifford_and_resets_are_detected() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let mut prog = Program::from_circuit(&c);
        prog.push_reset_state(&[0], PrepState::Plus);
        let p = ProgramProfile::of(&prog);
        assert!(!p.all_clifford);
        assert!(p.has_resets);
    }

    #[test]
    fn profile_is_invariant_under_remapping() {
        let mut c = Circuit::new(3);
        c.h(0).ry(1, 0.3).cx(0, 2);
        let prog = Program::from_circuit(&c);
        let remapped = prog.remapped(&[2, 0, 1]);
        assert_eq!(ProgramProfile::of(&prog), ProgramProfile::of(&remapped));
    }

    #[test]
    fn superposing_count_bounds_support() {
        // X / CX / CZ / Rz never grow support; H / Ry do.
        let mut c = Circuit::new(5);
        c.x(0).cx(0, 1).cz(1, 2).rz(2, 0.7).h(3).ry(4, 0.2);
        let p = ProgramProfile::of(&Program::from_circuit(&c));
        assert_eq!(p.superposing_ops, 2);
        assert_eq!(p.support_bound_log2(), 2);
    }
}
