//! State-vector, density-matrix and quantum-trajectory simulators with
//! Kraus noise channels — the substrate replacing the paper's Qiskit
//! AerSimulator.
//!
//! * [`StateVector`] — pure-state engine (ideal runs, trajectories);
//! * [`DensityMatrix`] — exact mixed-state engine with Kraus channels;
//! * [`NoiseModel`]/[`KrausChannel`]/[`ReadoutModel`] — gate and readout
//!   noise, including the measurement crosstalk Jigsaw exploits;
//! * [`Program`] — circuits plus the mid-circuit wire resets QSPC needs;
//! * [`backend`] — the [`BackendEngine`] abstraction every execution path
//!   resolves to (exact DM vs. trajectories) plus the scoped-thread
//!   helpers behind all parallel paths;
//! * [`Executor`] — noisy distribution extraction, readout application and
//!   parallel batched execution ([`Runner::run_batch`]).
//!
//! # Example
//!
//! ```
//! use qt_sim::{Executor, NoiseModel, Program};
//! use qt_circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let exec = Executor::new(NoiseModel::depolarizing(0.001, 0.01));
//! let dist = exec.noisy_distribution(&Program::from_circuit(&c), &[0, 1]);
//! assert!(dist.prob(0) > 0.45 && dist.prob(3) > 0.45);
//! ```

pub mod backend;
pub mod cache;
pub mod classify;
pub mod density;
pub mod executor;
pub mod fault;
pub mod kernel;
pub mod noise;
pub mod program;
pub mod sparse;
pub mod stabilizer;
pub mod statevector;
pub mod sync;
pub mod trajectory;
pub mod trie;

pub use backend::{
    Backend, BackendEngine, DensityMatrixEngine, EngineState, ResolvedEngine,
    SparseStatevectorEngine, StabilizerEngine, StatevectorEngine, TrajectoryEngine,
};
pub use cache::{run_output_weight, CacheStats, ShardedLruCache};
pub use classify::ProgramProfile;
pub use density::DensityMatrix;
pub use executor::{
    batch_trie_stats, ideal_distribution, job_sample_seed, sample_counts_deterministic,
    BatchConfigError, BatchJob, BatchPolicy, Executor, JobInterner, JobKey, RunOutput, Runner,
    SampledOutput, ShotPlan, MAX_MEASURED_BITS,
};
pub use fault::{
    try_run_batch_isolated, try_run_batch_resilient, ChaosConfig, ChaosRunner, FailureStats, Fault,
    InjectedFaults, RetryPolicy, RunError, RunErrorKind,
};
pub use kernel::{ControlledBlock, KernelClass};
pub use noise::{
    apply_readout, KrausChannel, NoiseModel, NoiseRule, ReadoutModel, TwirlUnsupported,
};
pub use program::{Op, Program};
pub use statevector::StateVector;
pub use sync::{wait_recover, wait_timeout_recover, LockRecoverExt};
pub use trajectory::TrajectoryConfig;
pub use trie::{ExecutionTrie, TrieStats};
