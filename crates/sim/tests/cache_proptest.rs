//! Properties of the sharded LRU result cache under both serial and
//! interleaved multi-thread workloads: the memory-weight capacity is a
//! hard invariant (never exceeded, not even transiently observable), and
//! a hit is always **bit-identical** to the value a fresh execution of
//! the same job would produce — the cache can forget, it can never lie.

use proptest::prelude::*;
use qt_circuit::Circuit;
use qt_dist::Distribution;
use qt_sim::cache::{run_output_weight, ShardedLruCache};
use qt_sim::{BatchJob, Executor, JobKey, NoiseModel, Program, RunOutput, Runner};

/// A deterministic job pool: key + the program behind it.
fn job_pool(n: usize) -> Vec<(JobKey, Program, Vec<usize>)> {
    (0..n)
        .map(|v| {
            let mut c = Circuit::new(2);
            c.h(0);
            c.rz(1, 0.1 + v as f64 * 0.37);
            c.cx(0, 1);
            let program = Program::from_circuit(&c);
            let measured = vec![0, 1];
            let key = BatchJob::key_of(&program, &measured);
            (key, program, measured)
        })
        .collect()
}

/// The value a fresh pipeline execution of pool job `v` produces.
fn fresh_output(pool: &[(JobKey, Program, Vec<usize>)], v: usize) -> RunOutput {
    let exec = Executor::new(NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02));
    exec.run(&pool[v].1, &pool[v].2)
}

fn assert_identical(a: &RunOutput, b: &RunOutput) {
    let xs: Vec<(u64, u64)> = a.dist.iter().map(|(i, p)| (i, p.to_bits())).collect();
    let ys: Vec<(u64, u64)> = b.dist.iter().map(|(i, p)| (i, p.to_bits())).collect();
    assert_eq!(xs, ys, "cached hit diverged from a fresh run");
    assert_eq!((a.gates, a.two_qubit_gates), (b.gates, b.two_qubit_gates));
}

/// A cheap synthetic value whose distribution encodes `(job, weight)` so
/// any cross-key mixup is visible bitwise.
fn synthetic(v: usize, weight: usize) -> RunOutput {
    let p = 1.0 / (2.0 + v as f64 + weight as f64 * 1e-3);
    RunOutput {
        dist: Distribution::try_from_entries(2, vec![(0, p), (3, 1.0 - p)]).unwrap(),
        gates: v,
        two_qubit_gates: weight,
    }
}

proptest! {
    /// Serial oracle: arbitrary insert/get sequences never exceed the
    /// byte budget, and every hit equals the last value stored there.
    #[test]
    fn capacity_and_hits_hold_serially(
        capacity in 64usize..2048,
        shards in 1usize..5,
        ops in prop::collection::vec((0usize..12, 16usize..256, prop::bool::ANY), 1..80),
    ) {
        let pool = job_pool(12);
        let cache = ShardedLruCache::new(capacity, shards);
        let mut last: Vec<Option<RunOutput>> = vec![None; 12];
        for (v, weight, is_insert) in ops {
            if is_insert {
                let value = synthetic(v, weight);
                if cache.insert(pool[v].0, value.clone(), weight) {
                    last[v] = Some(value);
                }
            } else if let Some(hit) = cache.get(pool[v].0) {
                let expected = last[v].as_ref().expect("hit without a prior insert");
                assert_identical(&hit, expected);
            }
            prop_assert!(
                cache.weight_bytes() <= cache.capacity_bytes(),
                "resident weight {} exceeds capacity {}",
                cache.weight_bytes(),
                cache.capacity_bytes()
            );
        }
        let stats = cache.stats();
        prop_assert!(stats.hits + stats.misses > 0 || stats.insertions > 0);
    }
}

proptest! {
    /// Interleaved writers and readers over a deliberately tiny cache
    /// (constant eviction pressure): the capacity invariant holds at
    /// every concurrent observation point, and every hit any thread sees
    /// is bit-identical to a fresh pipeline run of that job — values are
    /// only ever stored under their own key.
    #[test]
    fn capacity_and_hit_integrity_hold_under_threads(
        capacity in 256usize..1024,
        shards in 1usize..5,
        schedules in prop::collection::vec(
            prop::collection::vec((0usize..6, prop::bool::ANY), 10..40),
            2..5,
        ),
    ) {
        let pool = job_pool(6);
        // Ground truth: what a fresh execution of each pool job returns.
        let fresh: Vec<RunOutput> = (0..6).map(|v| fresh_output(&pool, v)).collect();
        let cache = ShardedLruCache::new(capacity, shards);

        std::thread::scope(|scope| {
            for schedule in &schedules {
                let cache = &cache;
                let pool = &pool;
                let fresh = &fresh;
                scope.spawn(move || {
                    for &(v, is_insert) in schedule {
                        if is_insert {
                            let out = fresh[v].clone();
                            let weight = run_output_weight(&out);
                            cache.insert(pool[v].0, out, weight);
                        } else if let Some(hit) = cache.get(pool[v].0) {
                            assert_identical(&hit, &fresh[v]);
                        }
                        assert!(
                            cache.weight_bytes() <= cache.capacity_bytes(),
                            "capacity exceeded under concurrency"
                        );
                    }
                });
            }
        });

        prop_assert!(cache.weight_bytes() <= cache.capacity_bytes());
        let stats = cache.stats();
        prop_assert_eq!(
            stats.hits + stats.misses,
            schedules
                .iter()
                .flatten()
                .filter(|(_, is_insert)| !is_insert)
                .count() as u64
        );
    }
}
