//! Finite-shot batch execution contracts: sampled counts must be a pure
//! function of `(jobs, shot plan, seed)` — stable across repeated runs,
//! bit-identical between the trie-integrated and per-job batch policies
//! and between the trait-default and `Executor`-override paths, and
//! invariant to the sampler's worker-thread count.

use qt_circuit::Circuit;
use qt_dist::Distribution;
use qt_sim::{
    sample_counts_deterministic, Backend, BatchConfigError, BatchJob, BatchPolicy, Executor,
    NoiseModel, Program, RunOutput, Runner, ShotPlan,
};

fn qaoa_like_jobs() -> Vec<BatchJob> {
    // Shared prefixes (h layer + entangler) with divergent suffixes, so
    // the trie path actually shares work, plus one duplicate program with
    // a different measured set.
    let mut jobs = Vec::new();
    for k in 0..10 {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3).cz(0, 1).cz(1, 2).cz(2, 3);
        c.ry(k % 3, 0.2 + 0.1 * k as f64);
        jobs.push(BatchJob::new(Program::from_circuit(&c), vec![0, 1, 2, 3]));
    }
    let clone_of_first = jobs[0].program.clone();
    jobs.push(BatchJob::new(clone_of_first, vec![2, 0]));
    jobs
}

fn executor() -> Executor {
    Executor::with_backend(
        NoiseModel::depolarizing(0.003, 0.02).with_readout(0.02),
        Backend::DensityMatrix,
    )
}

/// A wrapper that deliberately exposes only `Runner::run`, so every batch
/// and sampling method exercises the trait's *default* implementations.
struct DefaultsOnly(Executor);

impl Runner for DefaultsOnly {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        self.0.run(program, measured)
    }
}

#[test]
fn sampled_batch_is_seed_stable_and_totals_the_plan() {
    let exec = executor();
    let jobs = qaoa_like_jobs();
    let plan = ShotPlan::from_shots((0..jobs.len()).map(|i| 1000 + 17 * i).collect());
    let a = exec.run_batch_sampled(&jobs, &plan, 42);
    let b = exec.run_batch_sampled(&jobs, &plan, 42);
    assert_eq!(a, b, "same seed must reproduce every count");
    let c = exec.run_batch_sampled(&jobs, &plan, 43);
    assert_ne!(a, c, "different seeds should differ somewhere");
    for (i, out) in a.iter().enumerate() {
        assert_eq!(out.shots, plan.shots(i));
        assert_eq!(out.counts.shots(), plan.shots(i) as u64);
        assert_eq!(out.gates, jobs[i].program.gate_count());
    }
    assert_eq!(plan.total_shots(), a.iter().map(|o| o.shots as u64).sum());
}

#[test]
fn sampled_counts_are_identical_across_batch_policies_and_defaults() {
    let exec = executor();
    let jobs = qaoa_like_jobs();
    let plan = ShotPlan::uniform(jobs.len(), 5000);
    let trie = exec.run_batch_sampled(&jobs, &plan, 7);
    let perjob = exec
        .clone()
        .with_batch_policy(BatchPolicy::PerJob)
        .expect("per-job policy is valid")
        .run_batch_sampled(&jobs, &plan, 7);
    assert_eq!(
        trie, perjob,
        "Trie and PerJob sampling must agree bit-for-bit"
    );
    let defaults = DefaultsOnly(exec).run_batch_sampled(&jobs, &plan, 7);
    assert_eq!(trie, defaults, "trait-default path must agree bit-for-bit");
}

#[test]
fn single_job_sampling_matches_its_batch() {
    let exec = executor();
    let jobs = qaoa_like_jobs();
    let single = exec.run_sampled(&jobs[0].program, &jobs[0].measured, 3000, 9);
    let batch = exec.run_batch_sampled(&jobs[0..1], &ShotPlan::uniform(1, 3000), 9);
    assert_eq!(single, batch[0]);
}

#[test]
fn sampler_is_invariant_to_worker_thread_count() {
    let dist = Distribution::try_from_probs(3, vec![0.05, 0.3, 0.15, 0.2, 0.1, 0.08, 0.07, 0.05])
        .expect("3-bit test distribution");
    // Multi-stream regime (>= 2^14 shots) and single-stream regime.
    for shots in [50_000usize, 300] {
        let one = sample_counts_deterministic(&dist, shots, 123, 1);
        let many = sample_counts_deterministic(&dist, shots, 123, 8);
        assert_eq!(one, many, "{shots} shots");
        assert_eq!(one.shots(), shots as u64);
    }
}

#[test]
fn zero_live_state_budget_is_rejected_at_config_time() {
    // Regression: a zero budget used to be clamped silently deep in the
    // trie walk, degrading to replay-everything with no signal.
    let err = executor()
        .with_batch_policy(BatchPolicy::Trie {
            max_live_states: Some(0),
        })
        .unwrap_err();
    assert_eq!(err, BatchConfigError::ZeroLiveStateBudget);
    assert!(err.to_string().contains("max_live_states"), "{err}");
    // Every valid shape still configures.
    for policy in [
        BatchPolicy::Trie {
            max_live_states: Some(1),
        },
        BatchPolicy::Trie {
            max_live_states: None,
        },
        BatchPolicy::PerJob,
    ] {
        assert!(executor().with_batch_policy(policy).is_ok(), "{policy:?}");
    }
}

#[test]
fn empirical_frequencies_converge_to_the_noisy_distribution() {
    let exec = executor();
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).ry(2, 0.4).cz(1, 2);
    let p = Program::from_circuit(&c);
    let exact = exec.run(&p, &[0, 1, 2]);
    let sampled = exec.run_sampled(&p, &[0, 1, 2], 1 << 20, 5);
    let freq = sampled.to_run_output();
    for i in 0..8 {
        let (f, e) = (freq.dist.prob(i), exact.dist.prob(i));
        assert!((f - e).abs() < 5e-3, "frequency {f} vs exact {e}");
    }
}
