//! Property-based tests for the simulation engines.

use proptest::prelude::*;
use qt_circuit::{Circuit, Gate};
use qt_sim::{Backend, DensityMatrix, Executor, KrausChannel, NoiseModel, Program, StateVector};

fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Rx(t), vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Ry(t), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        q2.prop_map(|(a, b)| (Gate::Swap, vec![a, b])),
    ]
}

fn arb_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 1..len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for (g, qs) in instrs {
            c.push(g, qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The density-matrix engine and the state-vector engine agree exactly
    /// on noiseless circuits.
    #[test]
    fn dm_matches_sv_noiselessly(circ in arb_circuit(4, 20)) {
        let sv = StateVector::from_circuit(&circ);
        let dm = DensityMatrix::from_circuit(&circ);
        let a = sv.probabilities();
        let b = dm.diagonal();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-10);
        }
        prop_assert!((dm.purity() - 1.0).abs() < 1e-9);
    }

    /// Noisy distributions are normalized and non-negative for any circuit.
    #[test]
    fn noisy_distributions_are_probability_vectors(
        circ in arb_circuit(4, 16),
        p1 in 0.0..0.05f64,
        p2 in 0.0..0.1f64,
        ro in 0.0..0.2f64,
    ) {
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(p1, p2).with_readout(ro),
            Backend::DensityMatrix,
        );
        let dist = exec.noisy_distribution(&Program::from_circuit(&circ), &[0, 1, 2, 3]);
        prop_assert!((dist.total() - 1.0).abs() < 1e-8);
        prop_assert!(dist.iter().all(|(_, p)| p >= -1e-12));
    }

    /// Depolarizing fast path equals the Kraus-sum path.
    #[test]
    fn depolarizing_fast_path_is_exact(
        circ in arb_circuit(3, 12),
        p in 0.0..0.5f64,
        a in 0usize..3,
        b in 0usize..3,
    ) {
        prop_assume!(a != b);
        let mut fast = DensityMatrix::from_circuit(&circ);
        let mut slow = fast.clone();
        fast.apply_depolarizing(&[a, b], p);
        slow.apply_kraus(KrausChannel::depolarizing(2, p).ops(), &[a, b]);
        let x = fast.diagonal();
        let y = slow.diagonal();
        for (u, v) in x.iter().zip(&y) {
            prop_assert!((u - v).abs() < 1e-9, "fast {u} vs slow {v}");
        }
    }

    /// Reset channels preserve trace and sever correlations.
    #[test]
    fn reset_preserves_trace(circ in arb_circuit(3, 12), q in 0usize..3) {
        let mut prog = Program::from_circuit(&circ);
        prog.push_reset_state(&[q], qt_math::states::PrepState::PlusI);
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let rho = exec.run_dm(&prog);
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-9);
        // Reset qubit must be exactly |i⟩.
        let m = rho.partial_trace(&[q]).to_matrix();
        prop_assert!(m.approx_eq(&qt_math::states::PrepState::PlusI.projector(), 1e-9));
    }

    /// Program remapping through a permutation relabels outcomes exactly.
    #[test]
    fn remapping_is_a_relabeling(circ in arb_circuit(3, 12)) {
        let prog = Program::from_circuit(&circ);
        let map = vec![2usize, 0, 1];
        let remapped = prog.remapped(&map);
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let a = exec.noisy_distribution(&prog, &[0, 1, 2]);
        let b = exec.noisy_distribution(&remapped, &[2, 0, 1]);
        for i in 0..8 {
            prop_assert!((a.prob(i) - b.prob(i)).abs() < 1e-10);
        }
    }

    /// Sampled counts converge to the exact distribution.
    #[test]
    fn sampling_matches_distribution(seed in 0u64..1000) {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let exec = Executor::with_backend(
            NoiseModel::ideal().with_readout(0.1),
            Backend::DensityMatrix,
        );
        let prog = Program::from_circuit(&c);
        let exact = exec.noisy_distribution(&prog, &[0, 1]);
        let counts = exec.sampled_counts(&prog, &[0, 1], 20_000, seed);
        prop_assert!(counts.shots() == 20_000);
        for i in 0..4 {
            let f = counts.frequency(i);
            prop_assert!((f - exact.prob(i)).abs() < 0.03, "bin {i}: {f} vs {}", exact.prob(i));
        }
    }
}
