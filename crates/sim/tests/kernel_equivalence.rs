//! Property tests pinning every specialized kernel to the generic
//! `apply_op_generic` oracle: random gates, random operand orders, random
//! register sizes 1–6, random states — for both the state-vector and the
//! density-matrix path.

use proptest::prelude::*;
use qt_circuit::Gate;
use qt_math::{Complex, Matrix};
use qt_sim::kernel::{apply_classified, apply_op, apply_op_generic, KernelClass};
use qt_sim::DensityMatrix;

/// A random gate drawn from every kernel class, with a random (distinct)
/// operand list drawn from an `n`-qubit register.
fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q1 = (0..n).prop_map(|a| vec![a]);
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    let angle = -3.2..3.2f64;
    let one_q = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::Sx),
        angle.clone().prop_map(Gate::Rx),
        angle.clone().prop_map(Gate::Ry),
        angle.clone().prop_map(Gate::Rz),
        angle.clone().prop_map(Gate::Phase),
        (angle.clone(), angle.clone(), angle.clone()).prop_map(|(t, p, l)| Gate::U(t, p, l)),
    ];
    let two_q = prop_oneof![
        Just(Gate::Cx),
        Just(Gate::Cy),
        Just(Gate::Cz),
        Just(Gate::Swap),
        angle.clone().prop_map(Gate::Cp),
        angle.clone().prop_map(Gate::Crz),
        angle.clone().prop_map(Gate::Crx),
        angle.clone().prop_map(Gate::Cry),
    ];
    let arms: Vec<Box<dyn Strategy<Value = (Gate, Vec<usize>)>>> = if n >= 3 {
        let q3 = (0..n, 0..n, 0..n)
            .prop_filter("distinct", |(a, b, c)| a != b && a != c && b != c)
            .prop_map(|(a, b, c)| vec![a, b, c]);
        let angle3 = -3.2..3.2f64;
        vec![
            proptest::strategy::boxed((one_q, q1).prop_map(|(g, qs)| (g, qs))),
            proptest::strategy::boxed((two_q, q2).prop_map(|(g, (a, b))| (g, vec![a, b]))),
            proptest::strategy::boxed((angle3.prop_map(Gate::Ccp), q3).prop_map(|(g, qs)| (g, qs))),
        ]
    } else if n >= 2 {
        vec![
            proptest::strategy::boxed((one_q, q1).prop_map(|(g, qs)| (g, qs))),
            proptest::strategy::boxed((two_q, q2).prop_map(|(g, (a, b))| (g, vec![a, b]))),
        ]
    } else {
        vec![proptest::strategy::boxed(
            (one_q, q1).prop_map(|(g, qs)| (g, qs)),
        )]
    };
    proptest::strategy::Union::new(arms)
}

/// A random (unnormalized) dense state — kernels are linear, so
/// equivalence on arbitrary vectors is the strongest check.
fn arb_state(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 1 << n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

fn assert_amps_close(fast: &[Complex], slow: &[Complex], what: &str) -> TestCaseResult {
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        prop_assert!(
            a.approx_eq(*b, 1e-11),
            "{what}: amplitude {i} differs ({a:?} vs {b:?})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dispatched kernels match the generic oracle on the state-vector
    /// path for every gate, operand order, and register size 1–6.
    #[test]
    fn specialized_kernels_match_generic_on_statevector(
        n in 1usize..7,
        seed in 0u64..1u64 << 32,
    ) {
        // Draw the gate and state against the drawn register size.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, qs) = arb_gate(n).generate(&mut rng);
        let mut fast = arb_state(n).generate(&mut rng);
        let mut slow = fast.clone();
        apply_op(&mut fast, n, &g.matrix(), &qs);
        apply_op_generic(&mut slow, n, &g.matrix(), &qs);
        assert_amps_close(&fast, &slow, &format!("{} on {qs:?} ({n}q, dispatch)", g.name()))?;

        // The gate-constructed class agrees with the matrix-scanned one.
        let mut from_gate = slow.clone();
        let mut reference = slow;
        apply_classified(&mut from_gate, n, &KernelClass::for_gate(&g), &qs);
        apply_op_generic(&mut reference, n, &g.matrix(), &qs);
        assert_amps_close(
            &from_gate,
            &reference,
            &format!("{} on {qs:?} ({n}q, for_gate)", g.name()),
        )?;
    }

    /// The classified two-sided density-matrix application matches the
    /// generic row/column oracle for every gate and register size 1–5.
    #[test]
    fn specialized_kernels_match_generic_on_density_matrix(
        n in 1usize..6,
        seed in 0u64..1u64 << 32,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, qs) = arb_gate(n).generate(&mut rng);
        // A mixed, correlated state: partial average of two random pure-ish
        // vectors as a 2n-qubit amplitude array.
        let amps = arb_state(2 * n).generate(&mut rng);

        let mut fast = amps.clone();
        let mut slow = amps;
        // Fast: classified dispatch on row and column bits.
        let class = KernelClass::for_gate(&g);
        let col_qs: Vec<usize> = qs.iter().map(|&q| q + n).collect();
        apply_classified(&mut fast, 2 * n, &class, &qs);
        apply_classified(&mut fast, 2 * n, &class.conj(), &col_qs);
        // Oracle: generic dense application of u and conj(u).
        apply_op_generic(&mut slow, 2 * n, &g.matrix(), &qs);
        apply_op_generic(&mut slow, 2 * n, &g.matrix().conj(), &col_qs);
        assert_amps_close(&fast, &slow, &format!("{} on {qs:?} ({n}q DM)", g.name()))?;
    }

    /// `apply_kraus` (classified, scratch-buffer) equals the naive
    /// per-term clone-and-sum reference.
    #[test]
    fn kraus_scratch_path_matches_naive_sum(
        n in 1usize..4,
        seed in 0u64..1u64 << 32,
        gamma in 0.05..0.95f64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = (0..n).generate(&mut rng);
        // Amplitude damping: one diagonal and one strictly-triangular op —
        // two different kernel classes in a single channel.
        let kraus = vec![
            Matrix::mat2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::real((1.0 - gamma).sqrt()),
            ),
            Matrix::mat2(
                Complex::ZERO,
                Complex::real(gamma.sqrt()),
                Complex::ZERO,
                Complex::ZERO,
            ),
        ];
        let amps = arb_state(2 * n).generate(&mut rng);
        let mut rho_fast = dm_from_amps(n, amps.clone());
        rho_fast.apply_kraus(&kraus, &[q]);

        // Naive reference: clone per term, generic kernels, summed.
        let col_qs = [q + n];
        let mut acc = vec![Complex::ZERO; amps.len()];
        for k in &kraus {
            let mut term = amps.clone();
            apply_op_generic(&mut term, 2 * n, k, &[q]);
            apply_op_generic(&mut term, 2 * n, &k.conj(), &col_qs);
            for (a, t) in acc.iter_mut().zip(term) {
                *a += t;
            }
        }
        let rho_slow = dm_from_amps(n, acc);
        prop_assert!(
            rho_fast.to_matrix().approx_eq(&rho_slow.to_matrix(), 1e-11),
            "kraus on qubit {q} of {n} differs"
        );
    }

    /// The in-place depolarizing fast path equals `apply_kraus` with the
    /// explicit Pauli Kraus decomposition (1-qubit subsets).
    #[test]
    fn depolarizing_matches_pauli_kraus_1q(
        n in 1usize..4,
        seed in 0u64..1u64 << 32,
        p in 0.0..0.74f64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = (0..n).generate(&mut rng);
        let amps = hermitian_amps(n, &mut rng);
        let kraus = vec![
            Matrix::identity(2).scale(Complex::real((1.0 - p).sqrt())),
            qt_math::pauli::x2().scale(Complex::real((p / 3.0).sqrt())),
            qt_math::pauli::y2().scale(Complex::real((p / 3.0).sqrt())),
            qt_math::pauli::z2().scale(Complex::real((p / 3.0).sqrt())),
        ];
        let mut fast = dm_from_amps(n, amps.clone());
        let mut slow = fast.clone();
        fast.apply_depolarizing(&[q], p);
        slow.apply_kraus(&kraus, &[q]);
        prop_assert!(
            fast.to_matrix().approx_eq(&slow.to_matrix(), 1e-10),
            "depolarizing({p}) on qubit {q} of {n} differs"
        );
    }

    /// The in-place depolarizing fast path equals `apply_kraus` with the
    /// explicit 16-term Pauli Kraus decomposition (2-qubit subsets).
    #[test]
    fn depolarizing_matches_pauli_kraus_2q(
        n in 2usize..4,
        seed in 0u64..1u64 << 32,
        p in 0.0..0.9f64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (a, b) = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b).generate(&mut rng);
        let amps = hermitian_amps(n, &mut rng);
        let paulis = [
            Matrix::identity(2),
            qt_math::pauli::x2(),
            qt_math::pauli::y2(),
            qt_math::pauli::z2(),
        ];
        let mut kraus = Vec::new();
        for (i, pa) in paulis.iter().enumerate() {
            for (j, pb) in paulis.iter().enumerate() {
                let w = if i == 0 && j == 0 { 1.0 - p } else { p / 15.0 };
                kraus.push(pb.kron(pa).scale(Complex::real(w.sqrt())));
            }
        }
        let mut fast = dm_from_amps(n, amps.clone());
        let mut slow = fast.clone();
        fast.apply_depolarizing(&[a, b], p);
        slow.apply_kraus(&kraus, &[a, b]);
        prop_assert!(
            fast.to_matrix().approx_eq(&slow.to_matrix(), 1e-10),
            "depolarizing({p}) on qubits [{a},{b}] of {n} differs"
        );
    }
}

/// Builds a `DensityMatrix` from a raw `4^n` amplitude array.
fn dm_from_amps(n: usize, amps: Vec<Complex>) -> DensityMatrix {
    let dim = 1usize << n;
    let mut m = Matrix::zeros(dim, dim);
    for r in 0..dim {
        for c in 0..dim {
            m[(r, c)] = amps[r | (c << n)];
        }
    }
    DensityMatrix::from_matrix(&m)
}

/// A random Hermitian (not necessarily positive) flat density-matrix
/// array — Hermiticity is what the depolarizing twirl identity assumes.
fn hermitian_amps(n: usize, rng: &mut rand::rngs::StdRng) -> Vec<Complex> {
    let raw = arb_state(2 * n).generate(rng);
    let dim = 1usize << n;
    let mut amps = vec![Complex::ZERO; raw.len()];
    for r in 0..dim {
        for c in 0..dim {
            let v = raw[r | (c << n)];
            let w = raw[c | (r << n)].conj();
            amps[r | (c << n)] = (v + w).scale(0.5);
        }
    }
    amps
}

use rand::SeedableRng;
