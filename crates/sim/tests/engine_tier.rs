//! Property-based equivalence suite for the engine tier.
//!
//! The cheap engines (stabilizer tableau, sparse statevector) must be
//! *exact* replacements for the dense oracle on their admissible program
//! classes, the trie scheduler must stay bit-identical to per-job
//! execution under every engine, and `Backend::Auto`'s per-program
//! selection must never change results — only cost.

use proptest::prelude::*;
use qt_circuit::{Circuit, Gate};
use qt_dist::Distribution;
use qt_sim::{Backend, BatchJob, BatchPolicy, Executor, NoiseModel, Program, Runner};

/// Clifford-only gate stream: the stabilizer engine's full alphabet.
fn arb_clifford_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        q.clone().prop_map(|a| (Gate::Sdg, vec![a])),
        q.clone().prop_map(|a| (Gate::Sx, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::Y, vec![a])),
        q.clone().prop_map(|a| (Gate::Z, vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cy, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        q2.prop_map(|(a, b)| (Gate::Swap, vec![a, b])),
    ]
}

/// General gate stream including non-Clifford rotations and phases.
fn arb_any_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Ry(t), vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        (q2.clone(), -3.0..3.0f64).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
        q2.prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
    ]
}

fn circuit_of(n: usize, instrs: Vec<(Gate, Vec<usize>)>) -> Circuit {
    let mut c = Circuit::new(n);
    for (g, qs) in instrs {
        c.push(g, qs);
    }
    c
}

fn arb_clifford_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_clifford_gate(n), 1..len).prop_map(move |i| circuit_of(n, i))
}

fn arb_any_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_any_gate(n), 1..len).prop_map(move |i| circuit_of(n, i))
}

fn dist_of(
    backend: Backend,
    noise: &NoiseModel,
    circ: &Circuit,
    measured: &[usize],
) -> Distribution {
    Executor::with_backend(noise.clone(), backend)
        .noisy_distribution(&Program::from_circuit(circ), measured)
}

fn assert_close(a: &Distribution, b: &Distribution, tol: f64, what: &str) {
    assert_eq!(a.n_bits(), b.n_bits(), "{what}: width mismatch");
    for i in 0..1u64 << a.n_bits() {
        let (x, y) = (a.prob(i), b.prob(i));
        assert!((x - y).abs() < tol, "{what}: index {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stabilizer engine vs the density-matrix oracle, noise-free, on
    /// random Clifford circuits with random measurement subsets.
    #[test]
    fn stabilizer_matches_dense_oracle_ideally(
        circ in arb_clifford_circuit(4, 24),
        k in 1usize..5,
    ) {
        let measured: Vec<usize> = (0..k).rev().collect();
        let noise = NoiseModel::ideal();
        let a = dist_of(Backend::Stabilizer, &noise, &circ, &measured);
        let b = dist_of(Backend::DensityMatrix, &noise, &circ, &measured);
        assert_close(&a, &b, 1e-9, "stabilizer vs dense (ideal)");
    }

    /// Stabilizer engine's analytic Pauli-noise mixing vs the exact Kraus
    /// evolution of the density matrix.
    #[test]
    fn stabilizer_matches_dense_oracle_under_pauli_noise(
        circ in arb_clifford_circuit(4, 16),
        p1 in 0.0..0.08f64,
        p2 in 0.0..0.08f64,
    ) {
        let measured = [0, 1, 2, 3];
        let noise = NoiseModel::depolarizing(p1, p2);
        let a = dist_of(Backend::Stabilizer, &noise, &circ, &measured);
        let b = dist_of(Backend::DensityMatrix, &noise, &circ, &measured);
        assert_close(&a, &b, 1e-9, "stabilizer vs dense (depolarizing)");
    }

    /// Sparse statevector engine vs the dense oracle on arbitrary
    /// (non-Clifford) noise-free circuits, across the densify crossover.
    #[test]
    fn sparse_matches_dense_oracle(
        circ in arb_any_circuit(4, 20),
        k in 1usize..5,
    ) {
        let measured: Vec<usize> = (0..k).collect();
        let noise = NoiseModel::ideal();
        let a = dist_of(Backend::Sparse, &noise, &circ, &measured);
        let b = dist_of(Backend::DensityMatrix, &noise, &circ, &measured);
        assert_close(&a, &b, 1e-9, "sparse vs dense (ideal)");
    }

    /// `Backend::Auto` routes programs to cheap engines but must never
    /// change results relative to the exact oracle.
    #[test]
    fn auto_selection_never_changes_results(
        clifford in arb_clifford_circuit(4, 16),
        general in arb_any_circuit(4, 12),
        p1 in 0.0..0.05f64,
        p2 in 0.0..0.05f64,
    ) {
        let measured = [0, 1, 2, 3];
        let noise = NoiseModel::depolarizing(p1, p2);
        for circ in [&clifford, &general] {
            let a = dist_of(Backend::default(), &noise, circ, &measured);
            let b = dist_of(Backend::DensityMatrix, &noise, circ, &measured);
            assert_close(&a, &b, 1e-9, "auto vs dense");
        }
    }

    /// Forcing a cheap engine on an inadmissible program falls back to the
    /// dense path per program — still exact, never a panic.
    #[test]
    fn forced_engines_fall_back_exactly(circ in arb_any_circuit(3, 12), p in 0.0..0.05f64) {
        let measured = [0, 1, 2];
        let noise = NoiseModel::depolarizing(p, p);
        let oracle = dist_of(Backend::DensityMatrix, &noise, &circ, &measured);
        for forced in [Backend::Stabilizer, Backend::Sparse] {
            let a = dist_of(forced, &noise, &circ, &measured);
            assert_close(&a, &oracle, 1e-9, "forced-engine fallback");
        }
    }
}

/// A batch of programs sharing a common prefix, as the trie scheduler
/// expects from mitigation ensembles.
fn prefix_family(prefix: &Circuit, n: usize) -> Vec<BatchJob> {
    let gates: [(Gate, Vec<usize>); 4] = [
        (Gate::X, vec![0]),
        (Gate::Z, vec![1]),
        (Gate::Cx, vec![1, 0]),
        (Gate::S, vec![n - 1]),
    ];
    let mut jobs = Vec::new();
    for (g, qs) in gates {
        let mut c = prefix.clone();
        c.push(g, qs);
        let measured: Vec<usize> = (0..n).collect();
        jobs.push(BatchJob::new(Program::from_circuit(&c), measured));
    }
    jobs.push(BatchJob::new(
        Program::from_circuit(prefix),
        (0..n).collect::<Vec<_>>(),
    ));
    jobs
}

/// Trie-scheduled execution is bit-identical to per-job execution for the
/// fork-capable cheap engines, like it already is for the dense ones.
#[test]
fn trie_is_bit_identical_to_per_job_for_each_engine() {
    let n = 4;
    let mut prefix = Circuit::new(n);
    prefix.h(0);
    for q in 1..n {
        prefix.cx(q - 1, q);
    }
    prefix.s(2).sdg(3).cz(0, 2);

    let cases = [
        (Backend::Stabilizer, NoiseModel::depolarizing(0.01, 0.03)),
        (Backend::Stabilizer, NoiseModel::ideal()),
        (Backend::Sparse, NoiseModel::ideal()),
        (Backend::DensityMatrix, NoiseModel::depolarizing(0.01, 0.03)),
    ];
    for (backend, noise) in cases {
        let jobs = prefix_family(&prefix, n);
        let trie = Executor::with_backend(noise.clone(), backend);
        let per_job = Executor::with_backend(noise.clone(), backend)
            .with_batch_policy(BatchPolicy::PerJob)
            .unwrap();
        let a = trie.run_batch(&jobs);
        let b = per_job.run_batch(&jobs);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            let xs: Vec<(u64, f64)> = x.dist.iter().collect();
            let ys: Vec<(u64, f64)> = y.dist.iter().collect();
            assert_eq!(xs.len(), ys.len(), "{backend:?}: job {i} support sizes");
            for (&(ix, p), &(iy, q)) in xs.iter().zip(&ys) {
                assert!(
                    ix == iy && p.to_bits() == q.to_bits(),
                    "{backend:?}: job {i}: ({ix}, {p:?}) != ({iy}, {q:?}) (bitwise)"
                );
            }
        }
    }
}

/// The Auto ladder's routing decisions, observed through the engine-mix
/// report: Clifford programs ride the tableau, wide low-entanglement
/// programs ride the sparse map, dense programs keep the density matrix.
#[test]
fn auto_ladder_routes_by_program_class() {
    let exec = Executor::new(NoiseModel::ideal());

    // 4q Clifford → stabilizer.
    let mut cliff = Circuit::new(4);
    cliff.h(0).cx(0, 1).cx(1, 2).cx(2, 3).s(3);

    // 30 qubits, one superposing gate, a non-Clifford phase: too wide for
    // any dense engine, bounded support → sparse statevector.
    let mut wide = Circuit::new(30);
    wide.h(0).t(0);
    for q in 1..30 {
        wide.cx(q - 1, q);
    }

    // 4q with dense superposition everywhere and a T gate → density matrix.
    let mut dense = Circuit::new(4);
    dense.h(0).h(1).h(2).h(3).t(0).cx(0, 1);

    let jobs: Vec<BatchJob> = [&cliff, &wide, &dense]
        .iter()
        .map(|c| {
            let k = 4.min(c.n_qubits());
            BatchJob::new(Program::from_circuit(c), (0..k).collect::<Vec<_>>())
        })
        .collect();
    let mix = exec.engine_mix(&jobs).expect("executor reports engines");
    assert_eq!(
        mix,
        vec![
            ("density-matrix".to_string(), 1),
            ("sparse-statevector".to_string(), 1),
            ("stabilizer".to_string(), 1),
        ]
    );

    // And the routed batch still executes correctly end to end.
    let outs = exec.run_batch(&jobs);
    assert_eq!(outs.len(), 3);
    for out in &outs {
        let total: f64 = out.dist.total();
        assert!((total - 1.0).abs() < 1e-9, "normalized: {total}");
    }
    // GHZ+S distribution: half |0000⟩, half |1111⟩.
    assert!((outs[0].dist.prob(0) - 0.5).abs() < 1e-12);
    assert!((outs[0].dist.prob(15) - 0.5).abs() < 1e-12);
}
