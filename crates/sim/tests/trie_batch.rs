//! Equivalence and degradation tests for the prefix-sharing batch
//! executor: trie-scheduled `run_batch` must be **bit-for-bit** identical
//! to the serial per-job loop across random batches — shared and disjoint
//! prefixes, every engine (density matrix, statevector, trajectory
//! fallback, auto), every memory budget.

use proptest::prelude::*;
use qt_circuit::{Circuit, Gate};
use qt_math::states::PrepState;
use qt_sim::{
    Backend, BatchJob, BatchPolicy, Executor, NoiseModel, Program, RunOutput, Runner,
    TrajectoryConfig,
};

fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Ry(t), vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        (q2, -3.0..3.0f64).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
    ]
}

/// A batch mixing prefix-sharing families and disjoint programs: a shared
/// prefix circuit, per-job suffixes (sometimes with a mid-circuit reset),
/// plus unrelated jobs, over subset sizes 1–2.
fn arb_batch(n: usize) -> impl Strategy<Value = Vec<BatchJob>> {
    let prefix = prop::collection::vec(arb_gate(n), 1..8);
    let suffixes = prop::collection::vec(
        (
            prop::collection::vec(arb_gate(n), 0..6),
            (0..2usize).prop_map(|x| x == 1),
            0..n,
            prop::collection::vec(0..n, 1..3),
        ),
        1..6,
    );
    let loners = prop::collection::vec(
        (
            prop::collection::vec(arb_gate(n), 1..8),
            prop::collection::vec(0..n, 1..3),
        ),
        0..3,
    );
    (prefix, suffixes, loners).prop_map(move |(prefix, suffixes, loners)| {
        let mut jobs = Vec::new();
        for (suffix, reset, reset_q, measured) in suffixes {
            let mut c = Circuit::new(n);
            for (g, qs) in &prefix {
                c.push(g.clone(), qs.clone());
            }
            let mut p = Program::from_circuit(&c);
            if reset {
                p.push_reset_state(&[reset_q], PrepState::Plus);
            }
            for (g, qs) in suffix {
                p.push_gate(qt_circuit::Instruction::new(g, qs));
            }
            let mut m = measured;
            m.dedup();
            jobs.push(BatchJob::new(p, m));
        }
        for (gates, measured) in loners {
            let mut c = Circuit::new(n);
            for (g, qs) in gates {
                c.push(g, qs);
            }
            let mut m = measured;
            m.dedup();
            jobs.push(BatchJob::new(Program::from_circuit(&c), m));
        }
        jobs
    })
}

/// Serial reference: the `Runner::run` loop.
fn serial(exec: &Executor, jobs: &[BatchJob]) -> Vec<RunOutput> {
    jobs.iter()
        .map(|j| exec.run(&j.program, &j.measured))
        .collect()
}

fn assert_identical(batched: &[RunOutput], reference: &[RunOutput]) {
    assert_eq!(batched.len(), reference.len());
    for (b, s) in batched.iter().zip(reference) {
        assert_eq!(b.gates, s.gates);
        assert_eq!(b.two_qubit_gates, s.two_qubit_gates);
        assert_eq!(b.dist, s.dist, "trie output differs from serial run");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Density-matrix engine: trie-scheduled batches equal the serial
    /// loop bit for bit, for every checkpoint budget.
    #[test]
    fn trie_matches_serial_on_density_matrix(jobs in arb_batch(4)) {
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(0.004, 0.03).with_readout(0.02),
            Backend::DensityMatrix,
        );
        let reference = serial(&exec, &jobs);
        for budget in [None, Some(1), Some(2)] {
            let trie = exec
                .clone()
                .with_batch_policy(BatchPolicy::Trie { max_live_states: budget })
                .expect("nonzero budgets are valid");
            assert_identical(&trie.run_batch(&jobs), &reference);
        }
    }

    /// Statevector engine (pure fast path + DM fallback for resets):
    /// trie-scheduled batches equal the serial loop bit for bit.
    #[test]
    fn trie_matches_serial_on_statevector(jobs in arb_batch(4)) {
        let exec = Executor::with_backend(
            NoiseModel::ideal().with_readout(0.05),
            Backend::Statevector,
        );
        let reference = serial(&exec, &jobs);
        assert_identical(&exec.run_batch(&jobs), &reference);
    }

    /// Auto backend with a low DM threshold: part of the batch resolves to
    /// the trajectory engine and must take the per-job fallback, still bit
    /// identical to serial execution.
    #[test]
    fn trie_matches_serial_with_trajectory_fallback(jobs in arb_batch(4)) {
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(0.01, 0.04),
            Backend::Auto {
                dm_max_qubits: 2,
                trajectories: TrajectoryConfig {
                    n_trajectories: 64,
                    seed: 11,
                    n_threads: Some(2),
                },
            },
        );
        let reference = serial(&exec, &jobs);
        assert_identical(&exec.run_batch(&jobs), &reference);
    }
}

#[test]
fn pure_trajectory_backend_falls_back_per_job() {
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.01, 0.05),
        Backend::Trajectory(TrajectoryConfig {
            n_trajectories: 500,
            seed: 3,
            n_threads: None,
        }),
    );
    let mut jobs = Vec::new();
    for k in 0..5 {
        let mut c = Circuit::new(3);
        c.h(0).ry(1, 0.2 * k as f64).cx(0, 1).cz(1, 2);
        jobs.push(BatchJob::new(Program::from_circuit(&c), vec![0, 1, 2]));
    }
    assert_identical(&exec.run_batch(&jobs), &serial(&exec, &jobs));
}

/// `max_live_states = 1` never holds a checkpoint: every branch point
/// re-simulates from the root instead of forking, and the results still
/// match the unconstrained walk exactly.
#[test]
fn max_live_states_one_degrades_to_replay() {
    use qt_sim::backend::BackendEngine;
    use qt_sim::{DensityMatrixEngine, ExecutionTrie};
    use std::sync::Arc;

    // A 3-level fan-out so the walk has real branch points.
    let mut programs = Vec::new();
    for a in 0..3 {
        for b in 0..3 {
            let mut c = Circuit::new(3);
            c.h(0).cx(0, 1).ry(1, 0.3 * a as f64).rz(2, 0.5 * b as f64);
            programs.push(Program::from_circuit(&c));
        }
    }
    let refs: Vec<&Program> = programs.iter().collect();
    let trie = ExecutionTrie::build(&refs);
    let measured: Vec<Vec<usize>> = vec![vec![0, 1, 2]; programs.len()];
    let noise = Arc::new(NoiseModel::depolarizing(0.002, 0.01));
    let engine = DensityMatrixEngine;
    let profile = qt_sim::ProgramProfile::of(&programs[0]);
    let class = engine
        .fork_class(&noise, &profile)
        .expect("DM engine is fork-capable");
    let init = move || {
        engine
            .snapshot(3, &noise, class)
            .expect("DM snapshot exists")
    };

    let (free_dists, free) = trie.execute(&init, &measured, 64);
    let (one_dists, one) = trie.execute(&init, &measured, 1);
    assert_eq!(free_dists, one_dists, "budget must not change results");
    assert!(free.forks > 0, "unconstrained walk forks: {free:?}");
    assert_eq!(one.forks, 0, "budget 1 must never checkpoint: {one:?}");
    assert!(one.replays > 0, "budget 1 re-simulates branches: {one:?}");
}

/// Equal programs with different measured sets end on the same trie node
/// and share the entire evolution (a case plain job dedup cannot merge).
#[test]
fn different_measured_sets_share_one_evolution() {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cz(1, 2).ry(2, 0.7);
    let p = Program::from_circuit(&c);
    let jobs = vec![
        BatchJob::new(p.clone(), vec![0]),
        BatchJob::new(p.clone(), vec![1, 2]),
        BatchJob::new(p.clone(), vec![2, 0, 1]),
    ];
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.003, 0.02).with_readout(0.01),
        Backend::DensityMatrix,
    );
    assert_identical(&exec.run_batch(&jobs), &serial(&exec, &jobs));
}

#[test]
fn job_key_distinguishes_structure_and_caches() {
    let mut c1 = Circuit::new(2);
    c1.h(0).cx(0, 1);
    let mut c2 = Circuit::new(2);
    c2.h(0).cx(1, 0);
    let p1 = Program::from_circuit(&c1);
    let p2 = Program::from_circuit(&c2);
    assert_eq!(
        BatchJob::key_of(&p1, &[0, 1]),
        BatchJob::key_of(&p1.clone(), &[0, 1])
    );
    assert_ne!(
        BatchJob::key_of(&p1, &[0, 1]),
        BatchJob::key_of(&p2, &[0, 1])
    );
    assert_ne!(
        BatchJob::key_of(&p1, &[0, 1]),
        BatchJob::key_of(&p1, &[1, 0])
    );
    // Distinct gate parameters produce distinct keys.
    let mut a = Circuit::new(1);
    a.ry(0, 0.5);
    let mut b = Circuit::new(1);
    b.ry(0, 0.5000000000000001);
    assert_ne!(
        BatchJob::key_of(&Program::from_circuit(&a), &[0]),
        BatchJob::key_of(&Program::from_circuit(&b), &[0]),
    );
    // The cached key equals the recomputed one.
    let job = BatchJob::new(p1.clone(), vec![0, 1]);
    assert_eq!(job.dedup_key(), BatchJob::key_of(&p1, &[0, 1]));
    assert_eq!(job.dedup_key(), job.clone().dedup_key());
}
