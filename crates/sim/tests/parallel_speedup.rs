//! Demonstrates that multi-threaded batched shot execution beats the
//! serial path on a ≥16-qubit trajectory workload (the acceptance bar for
//! the parallel `Backend` engine).
//!
//! The workload is sized to run in a few seconds under `cargo test` while
//! still dominating thread-spawn overhead; the speedup assertion only
//! arms on machines with ≥ 4 cores so constrained CI runners cannot flake.

use qt_circuit::Circuit;
use qt_sim::backend::available_threads;
use qt_sim::{Backend, Executor, NoiseModel, Program, TrajectoryConfig};
use std::time::Instant;

fn workload(n_qubits: usize) -> Program {
    let mut c = Circuit::new(n_qubits);
    for q in 0..n_qubits {
        c.ry(q, 0.3 + 0.07 * q as f64);
    }
    for q in 0..n_qubits - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..n_qubits {
        c.rz(q, 0.9 - 0.05 * q as f64);
    }
    for q in (1..n_qubits - 1).step_by(2) {
        c.cz(q, q + 1);
    }
    Program::from_circuit(&c)
}

#[test]
fn parallel_trajectories_beat_serial_on_16_qubits() {
    const N: usize = 16;
    let program = workload(N);
    let measured: Vec<usize> = (0..N).collect();
    // Noise strong enough that stratification cannot skip the work: with
    // ~60 noisy gates at these rates almost every trajectory simulates.
    let noise = NoiseModel::depolarizing(0.02, 0.08);
    let run = |threads: usize, trajectories: usize| {
        let exec = Executor::with_backend(
            noise.clone(),
            Backend::Trajectory(TrajectoryConfig {
                n_trajectories: trajectories,
                seed: 77,
                n_threads: Some(threads),
            }),
        );
        let start = Instant::now();
        let dist = exec.noisy_distribution(&program, &measured);
        (start.elapsed(), dist)
    };

    // Warm-up sizing probe: keep the serial leg around a second even in
    // debug builds by scaling the trajectory count to the machine. The
    // per-trajectory cost is measured as a *difference* so one-time fixed
    // costs (channel resolution, the stratification ideal-distribution
    // precompute) don't inflate it and undershoot the budget.
    let (probe_small, _) = run(1, 2);
    let (probe_large, _) = run(1, 6);
    let per_traj = probe_large.saturating_sub(probe_small) / 4;
    let budget = std::time::Duration::from_millis(1200);
    let trajectories =
        ((budget.as_secs_f64() / per_traj.as_secs_f64().max(1e-6)) as usize).clamp(8, 2048);

    let cores = available_threads();
    let (serial, dist_serial) = run(1, trajectories);
    let (parallel, dist_parallel) = run(cores, trajectories);

    // Stream-seeded trajectories: identical results regardless of threads.
    assert_eq!(dist_serial, dist_parallel, "thread count changed results");
    assert!((dist_parallel.total() - 1.0).abs() < 1e-6);

    println!(
        "16q × {trajectories} trajectories: serial {serial:?}, \
         {cores}-thread {parallel:?} ({:.2}x)",
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
    if cores >= 4 {
        assert!(
            parallel < serial.mul_f64(0.8),
            "parallel batched execution should beat serial: \
             {parallel:?} vs {serial:?} on {cores} cores"
        );
    }
}
