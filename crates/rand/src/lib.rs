//! Vendored deterministic RNG with the (small) slice of the `rand` 0.9 API
//! this workspace uses: [`Rng`], [`RngExt::random`], [`SeedableRng`] and
//! [`rngs::StdRng`].
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the few external crates it needs. This shim is **not**
//! a cryptographic RNG; it exists to make seeded workload generation,
//! trajectory sampling and layout randomization reproducible. `StdRng` is
//! xoshiro256** seeded through SplitMix64, so streams are stable across
//! platforms and releases — a property the upstream crate explicitly does
//! not promise, but which the seeded tests here rely on.

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` ∈ [0, 1), integers uniform over their full range).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable from raw bits (the shim's `StandardUniform`).
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_stable() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(3);
        fn draw<R: super::Rng + ?Sized>(r: &mut R) -> f64 {
            r.random()
        }
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
