//! Quantum arithmetic benchmarks: Bernstein–Vazirani, the Draper QFT adder
//! and the QFT multiplier.

use crate::fourier::{iqft, qft};
use qt_circuit::Circuit;
use std::f64::consts::PI;

/// Bernstein–Vazirani with an `n_data`-bit secret.
///
/// Register layout: data qubits `0..n_data`, phase ancilla at `n_data`.
/// Measuring the data qubits yields the secret deterministically (ideally).
///
/// # Panics
///
/// Panics if the secret does not fit in `n_data` bits.
pub fn bernstein_vazirani(n_data: usize, secret: u64) -> Circuit {
    assert!(
        n_data >= 64 || secret < (1u64 << n_data),
        "secret does not fit in {n_data} bits"
    );
    let anc = n_data;
    let mut c = Circuit::new(n_data + 1);
    c.x(anc).h(anc);
    for q in 0..n_data {
        c.h(q);
    }
    c.mark_layer();
    for q in 0..n_data {
        if (secret >> q) & 1 == 1 {
            c.cx(q, anc);
        }
    }
    c.mark_layer();
    for q in 0..n_data {
        c.h(q);
    }
    c
}

/// The Draper QFT adder: computes `b ← (a + b) mod 2^n` in place.
///
/// Register layout: `a` in qubits `0..n`, `b` in qubits `n..2n` (both
/// little-endian). Inputs are loaded with X gates. Measure the `b` register.
pub fn qft_adder(n: usize, a: u64, b: u64) -> Circuit {
    qft_adder_sized(n, n, a, b)
}

/// The Draper adder with asymmetric register sizes: computes
/// `b ← (a + b) mod 2^n_b` with `a` in `n_a` bits and `b` in `n_b ≥ n_a`
/// bits (use `n_b = n_a + 1` for a carry bit — the paper's 7-qubit adder is
/// `n_a = 3, n_b = 4`).
pub fn qft_adder_sized(n_a: usize, n_b: usize, a: u64, b: u64) -> Circuit {
    assert!(n_b >= n_a, "b register must hold the sum");
    assert!(n_a >= 64 || a < (1u64 << n_a));
    assert!(n_b >= 64 || b < (1u64 << n_b));
    let n = n_a + n_b;
    let mut c = Circuit::new(n);
    for q in 0..n_a {
        if (a >> q) & 1 == 1 {
            c.x(q);
        }
    }
    for q in 0..n_b {
        if (b >> q) & 1 == 1 {
            c.x(n_a + q);
        }
    }
    c.mark_layer();
    // QFT on b (b qubit j at index n_a + j).
    let map: Vec<usize> = (n_a..n).collect();
    c.append(&qft(n_b).remap(&map, n));
    c.mark_layer();
    // Controlled phase additions: qubit b_j accumulates e^{2πi a / 2^{j+1}}.
    for m in 0..n_a {
        for j in m..n_b {
            let theta = PI * (1 << m) as f64 / (1 << j) as f64;
            c.cp(m, n_a + j, theta);
        }
    }
    c.mark_layer();
    c.append(&iqft(n_b).remap(&map, n));
    c
}

/// The QFT multiplier (Ruiz-Perez & Garcia-Escartin): computes
/// `out = (a · b) mod 2^n_out` into a fresh output register.
///
/// Register layout: `a` in `0..n_a`, `b` in `n_a..n_a+n_b`, output in the
/// remaining `n_out` qubits. The paper's 4-qubit instance is
/// `n_a = n_b = 1, n_out = 2`.
pub fn qft_multiplier(n_a: usize, n_b: usize, n_out: usize, a: u64, b: u64) -> Circuit {
    assert!(n_a >= 64 || a < (1u64 << n_a));
    assert!(n_b >= 64 || b < (1u64 << n_b));
    let n = n_a + n_b + n_out;
    let out0 = n_a + n_b;
    let mut c = Circuit::new(n);
    for q in 0..n_a {
        if (a >> q) & 1 == 1 {
            c.x(q);
        }
    }
    for q in 0..n_b {
        if (b >> q) & 1 == 1 {
            c.x(n_a + q);
        }
    }
    c.mark_layer();
    let map: Vec<usize> = (out0..n).collect();
    c.append(&qft(n_out).remap(&map, n));
    c.mark_layer();
    // Doubly-controlled phase additions of 2^{m+l} into the output.
    for m in 0..n_a {
        for l in 0..n_b {
            for j in 0..n_out {
                // e^{2πi·2^{m+l} / 2^{j+1}} on out_j — skip full turns.
                let power = m + l;
                if power > j {
                    continue;
                }
                let theta = PI * (1 << power) as f64 / (1 << j) as f64;
                c.ccp(m, n_a + l, out0 + j, theta);
            }
        }
    }
    c.mark_layer();
    c.append(&iqft(n_out).remap(&map, n));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_sim::StateVector;

    fn peak(probs: &[f64]) -> (usize, f64) {
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, &p)| (i, p))
            .unwrap()
    }

    #[test]
    fn bv_recovers_secret() {
        for secret in [0b1011u64, 0b0001, 0b1111, 0b0000] {
            let c = bernstein_vazirani(4, secret);
            let sv = StateVector::from_circuit(&c);
            let probs = sv.marginal_probabilities(&[0, 1, 2, 3]);
            let (idx, p) = peak(&probs);
            assert_eq!(idx as u64, secret);
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn adder_is_exhaustively_correct() {
        let n = 2;
        for a in 0..4u64 {
            for b in 0..4u64 {
                let c = qft_adder(n, a, b);
                let sv = StateVector::from_circuit(&c);
                let probs = sv.marginal_probabilities(&[2, 3]);
                let (idx, p) = peak(&probs);
                assert_eq!(
                    idx as u64,
                    (a + b) % 4,
                    "adder failed for {a}+{b}: {probs:?}"
                );
                assert!((p - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn adder_with_carry_register() {
        // n_a = 3, n_b = 4 (the paper's 7-qubit adder): sums up to 14 fit.
        for (a, b) in [(7u64, 7u64), (5, 6), (3, 1)] {
            let c = qft_adder_sized(3, 4, a, b);
            let sv = StateVector::from_circuit(&c);
            let probs = sv.marginal_probabilities(&[3, 4, 5, 6]);
            let (idx, p) = peak(&probs);
            assert_eq!(idx as u64, (a + b) % 16, "{a}+{b}");
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn adder_three_bits_spot_checks() {
        for (a, b) in [(3u64, 6u64), (5, 5), (7, 1)] {
            let c = qft_adder(3, a, b);
            let sv = StateVector::from_circuit(&c);
            let probs = sv.marginal_probabilities(&[3, 4, 5]);
            let (idx, p) = peak(&probs);
            assert_eq!(idx as u64, (a + b) % 8);
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn multiplier_is_exhaustively_correct_1x1() {
        for a in 0..2u64 {
            for b in 0..2u64 {
                let c = qft_multiplier(1, 1, 2, a, b);
                let sv = StateVector::from_circuit(&c);
                let probs = sv.marginal_probabilities(&[2, 3]);
                let (idx, p) = peak(&probs);
                assert_eq!(idx as u64, (a * b) % 4, "multiplier {a}*{b}");
                assert!((p - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multiplier_2x2() {
        for a in 0..4u64 {
            for b in 0..4u64 {
                let c = qft_multiplier(2, 2, 4, a, b);
                let sv = StateVector::from_circuit(&c);
                let probs = sv.marginal_probabilities(&[4, 5, 6, 7]);
                let (idx, p) = peak(&probs);
                assert_eq!(idx as u64, (a * b) % 16, "multiplier {a}*{b}");
                assert!((p - 1.0).abs() < 1e-9, "{a}*{b}: {p}");
            }
        }
    }

    #[test]
    fn bv_data_qubits_admit_z_checks() {
        let c = bernstein_vazirani(4, 0b1010);
        for q in 0..4 {
            assert!(
                qt_circuit::passes::split_into_segments(&c, &[q]).is_ok(),
                "data qubit {q} should be traceable"
            );
        }
    }

    #[test]
    fn adder_control_register_admits_z_checks() {
        // The `a` register only controls phases: traceable.
        let c = qft_adder(2, 2, 1);
        for q in 0..2 {
            assert!(qt_circuit::passes::split_into_segments(&c, &[q]).is_ok());
        }
    }
}
