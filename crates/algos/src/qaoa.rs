//! QAOA for MaxCut on regular graphs (Farhi et al.), the workload of
//! Fig. 9 and Tables I–III.
//!
//! The cost layer `e^{−iγ Σ Z_a Z_b}` is compiled *diagonally*
//! (`P(2γ) ⊗ P(2γ) · CP(−4γ)` per edge) so that every gate commutes with Z
//! on every qubit — which is what makes the cost layers Z-checkable and
//! reproduces the paper's 2-CX-per-edge basis gate count.

use qt_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-layer QAOA angles.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaParams {
    /// Cost angles γ, one per layer.
    pub gammas: Vec<f64>,
    /// Mixer angles β, one per layer.
    pub betas: Vec<f64>,
}

impl QaoaParams {
    /// Deterministic pseudo-random angles in a reasonable range.
    pub fn seeded(layers: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let gammas = (0..layers)
            .map(|_| 0.2 + rng.random::<f64>() * 0.9)
            .collect();
        let betas = (0..layers)
            .map(|_| 0.15 + rng.random::<f64>() * 0.6)
            .collect();
        QaoaParams { gammas, betas }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.gammas.len()
    }
}

/// The edge list of the `n`-cycle (2-regular) graph.
pub fn ring_graph(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Appends the diagonal compilation of `e^{−iγ Z_a Z_b}` to `c`.
pub fn zz_interaction(c: &mut Circuit, a: usize, b: usize, gamma: f64) {
    c.p(a, 2.0 * gamma);
    c.p(b, 2.0 * gamma);
    c.cp(a, b, -4.0 * gamma);
}

/// Builds the QAOA MaxCut circuit: `H` layer, then per layer a diagonal
/// cost layer over `edges` followed by the `Rx(2β)` mixer.
///
/// Layer boundaries are marked before every cost layer.
///
/// # Panics
///
/// Panics if `params` has a different layer count than implied or an edge is
/// out of range.
pub fn qaoa_maxcut(n: usize, edges: &[(usize, usize)], params: &QaoaParams) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (layer, (&gamma, &beta)) in params.gammas.iter().zip(&params.betas).enumerate() {
        let _ = layer;
        c.mark_layer();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            zz_interaction(&mut c, a, b, gamma);
        }
        for q in 0..n {
            c.rx(q, 2.0 * beta);
        }
    }
    c
}

/// The MaxCut objective value of a bitstring on `edges`.
pub fn maxcut_value(bits: usize, edges: &[(usize, usize)]) -> usize {
    edges
        .iter()
        .filter(|&&(a, b)| ((bits >> a) ^ (bits >> b)) & 1 == 1)
        .count()
}

/// The expected MaxCut value of the QAOA output distribution.
pub fn expected_cut(probs: &[f64], edges: &[(usize, usize)]) -> f64 {
    probs
        .iter()
        .enumerate()
        .map(|(x, &p)| p * maxcut_value(x, edges) as f64)
        .sum()
}

/// Coarse grid search for good QAOA angles: exhaustive over a
/// `grid × grid` lattice for the first layer, then greedy layer-by-layer
/// extension (each new layer optimized with earlier layers fixed).
///
/// Intended for the small instances of the paper's evaluation (n ≤ 12).
pub fn optimize_angles(
    n: usize,
    edges: &[(usize, usize)],
    layers: usize,
    grid: usize,
) -> QaoaParams {
    use qt_sim::StateVector;
    let mut params = QaoaParams {
        gammas: Vec::new(),
        betas: Vec::new(),
    };
    for _ in 0..layers {
        params.gammas.push(0.0);
        params.betas.push(0.0);
        let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
        for gi in 1..=grid {
            for bi in 1..=grid {
                let gamma = std::f64::consts::PI * gi as f64 / (grid + 1) as f64 / 2.0;
                let beta = std::f64::consts::PI * bi as f64 / (grid + 1) as f64 / 4.0;
                let layer = params.gammas.len() - 1;
                params.gammas[layer] = gamma;
                params.betas[layer] = beta;
                let c = qaoa_maxcut(n, edges, &params);
                let probs = StateVector::from_circuit(&c).probabilities();
                let cut = expected_cut(&probs, edges);
                if cut > best.0 {
                    best = (cut, gamma, beta);
                }
            }
        }
        let layer = params.gammas.len() - 1;
        params.gammas[layer] = best.1;
        params.betas[layer] = best.2;
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_sim::StateVector;

    #[test]
    fn zz_compilation_matches_exponential() {
        // e^{−iγZZ} = diag(e^{−iγ}, e^{iγ}, e^{iγ}, e^{−iγ}) up to phase.
        let gamma = 0.37;
        let mut c = Circuit::new(2);
        zz_interaction(&mut c, 0, 1, gamma);
        let u = c.unitary();
        let mut want = qt_math::Matrix::zeros(4, 4);
        for (i, sign) in [1.0, -1.0, -1.0, 1.0].iter().enumerate() {
            want[(i, i)] = qt_math::Complex::from_phase(-gamma * sign);
        }
        assert!(u.approx_eq_up_to_phase(&want, 1e-10));
    }

    #[test]
    fn output_respects_z2_symmetry() {
        // MaxCut QAOA states are bit-flip invariant: P(x) = P(~x).
        let n = 4;
        let params = QaoaParams::seeded(2, 9);
        let c = qaoa_maxcut(n, &ring_graph(n), &params);
        let sv = StateVector::from_circuit(&c);
        let p = sv.probabilities();
        let mask = (1 << n) - 1;
        for x in 0..(1 << n) {
            assert!(
                (p[x] - p[x ^ mask]).abs() < 1e-10,
                "Z2 symmetry violated at {x}"
            );
        }
        // Single-qubit marginals are uniform — the paper's argument for
        // subset size 2.
        let m = sv.marginal_probabilities(&[0]);
        assert!((m[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn qaoa_favors_better_cuts_at_good_angles() {
        let n = 6;
        let edges = ring_graph(n);
        let params = optimize_angles(n, &edges, 1, 7);
        let c = qaoa_maxcut(n, &edges, &params);
        let sv = StateVector::from_circuit(&c);
        let avg_cut = expected_cut(&sv.probabilities(), &edges);
        // Random guessing gives n/2 = 3; p=1 QAOA on a ring reaches 0.75
        // per edge at optimal angles.
        assert!(avg_cut > 4.0, "average cut {avg_cut}");
    }

    #[test]
    fn deeper_layers_do_not_hurt_objective() {
        let n = 4;
        let edges = ring_graph(n);
        let p1 = optimize_angles(n, &edges, 1, 6);
        let p2 = optimize_angles(n, &edges, 2, 6);
        let cut = |p: &QaoaParams| {
            let c = qaoa_maxcut(n, &edges, p);
            expected_cut(&StateVector::from_circuit(&c).probabilities(), &edges)
        };
        assert!(cut(&p2) >= cut(&p1) - 1e-9);
    }

    #[test]
    fn pairs_are_traceable_with_z_checks() {
        let n = 6;
        let c = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(3, 4));
        let segs = qt_circuit::passes::split_into_segments(&c, &[0, 1]).unwrap();
        // One check segment per layer (mixer Rx on subset starts new local).
        assert!(segs.len() >= 3);
    }

    #[test]
    fn layer_bounds_count_matches() {
        let c = qaoa_maxcut(5, &ring_graph(5), &QaoaParams::seeded(4, 2));
        assert_eq!(c.layer_bounds().len(), 4);
    }

    #[test]
    fn maxcut_value_counts_cut_edges() {
        let edges = ring_graph(4);
        assert_eq!(maxcut_value(0b0101, &edges), 4);
        assert_eq!(maxcut_value(0b0011, &edges), 2);
        assert_eq!(maxcut_value(0b0000, &edges), 0);
    }
}
