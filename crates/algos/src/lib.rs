//! Benchmark workload generators (Sec. VI of the paper).
//!
//! Every generator returns plain [`qt_circuit::Circuit`]s with layer marks
//! where the algorithm has natural cut boundaries. The QFT-family circuits
//! are built *without* terminal swaps (handled by relabeling), which keeps
//! every gate on the traced qubits diagonal or controlled — the structural
//! property QuTracer's Z checks rely on.

pub mod arithmetic;
pub mod fourier;
pub mod qaoa;
pub mod vqe;

pub use arithmetic::{bernstein_vazirani, qft_adder, qft_adder_sized, qft_multiplier};
pub use fourier::{iqft, iqft_example, qft, qpe};
pub use qaoa::{qaoa_maxcut, ring_graph, QaoaParams};

pub use vqe::vqe_ansatz;

use qt_circuit::Circuit;

/// A named benchmark: circuit plus the qubits the algorithm measures.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name (used in result tables).
    pub name: String,
    /// The circuit.
    pub circuit: Circuit,
    /// The measured qubits (ascending order).
    pub measured: Vec<usize>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, circuit: Circuit, measured: Vec<usize>) -> Self {
        Workload {
            name: name.into(),
            circuit,
            measured,
        }
    }
}

/// The paper's Table II benchmark suite (single-layer circuits) with the
/// register sizes and inputs used in the evaluation.
pub fn paper_single_layer_suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "4-q QFTMultiplier",
            qft_multiplier(1, 1, 2, 1, 1),
            vec![2, 3],
        ),
        Workload::new("5-q QPE", qpe(4, 1.0 / 3.0), (0..4).collect()),
        Workload::new("6-q QPE", qpe(5, 1.0 / 3.0), (0..5).collect()),
        Workload::new(
            "7-q QFTAdder",
            qft_adder_sized(3, 4, 5, 6),
            (3..7).collect(),
        ),
        Workload::new(
            "9-q BV",
            bernstein_vazirani(8, 0b1011_0110),
            (0..8).collect(),
        ),
        Workload::new("12-q VQE 1 layer", vqe_ansatz(12, 1, 11), (0..12).collect()),
        Workload::new("15-q VQE 1 layer", vqe_ansatz(15, 1, 12), (0..15).collect()),
        Workload::new(
            "10-q QAOA 1 layer",
            qaoa_maxcut(10, &ring_graph(10), &QaoaParams::seeded(1, 6)),
            (0..10).collect(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_eight_workloads() {
        let suite = paper_single_layer_suite();
        assert_eq!(suite.len(), 8);
        for wl in &suite {
            assert!(!wl.measured.is_empty());
            assert!(!wl.circuit.is_empty(), "{} is empty", wl.name);
            for &m in &wl.measured {
                assert!(m < wl.circuit.n_qubits());
            }
        }
    }

    #[test]
    fn suite_qubit_counts_match_names() {
        for wl in paper_single_layer_suite() {
            let n: usize = wl
                .name
                .split("-q")
                .next()
                .unwrap()
                .parse()
                .expect("name starts with qubit count");
            assert_eq!(wl.circuit.n_qubits(), n, "{}", wl.name);
        }
    }
}
