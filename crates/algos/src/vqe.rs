//! Hardware-efficient VQE ansatz (Kandala et al. style): layers of
//! single-qubit Y rotations and linear-entanglement CZ layers — the circuit
//! family of Figs. 6–8 and Tables II/III.

use qt_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds the ansatz: an initial Ry layer, then `layers` repetitions of
/// (CZ chain + Ry layer). Rotation angles are drawn deterministically from
/// `seed`.
///
/// Layer boundaries are marked around every CZ chain, giving QuTracer its
/// cut points.
pub fn vqe_ansatz(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut theta = || rng.random::<f64>() * std::f64::consts::PI;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, theta());
    }
    for _ in 0..layers {
        c.mark_layer();
        for q in 0..n.saturating_sub(1) {
            c.cz(q, q + 1);
        }
        for q in 0..n {
            c.ry(q, theta());
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_sim::StateVector;

    #[test]
    fn structure_matches_definition() {
        let n = 5;
        let layers = 3;
        let c = vqe_ansatz(n, layers, 7);
        let counts = c.gate_counts();
        assert_eq!(counts["ry"], n * (layers + 1));
        assert_eq!(counts["cz"], (n - 1) * layers);
        assert_eq!(c.layer_bounds().len(), layers);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(vqe_ansatz(4, 2, 42), vqe_ansatz(4, 2, 42));
        assert_ne!(vqe_ansatz(4, 2, 42), vqe_ansatz(4, 2, 43));
    }

    #[test]
    fn every_qubit_is_traceable() {
        let c = vqe_ansatz(6, 2, 1);
        for q in 0..6 {
            let segs = qt_circuit::passes::split_into_segments(&c, &[q]).unwrap();
            // One local block + one check segment per layer (plus trailing).
            assert!(segs.len() >= 2, "qubit {q}: {} segments", segs.len());
        }
    }

    #[test]
    fn output_distribution_is_normalized_and_spread() {
        let c = vqe_ansatz(4, 1, 3);
        let sv = StateVector::from_circuit(&c);
        let probs = sv.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        let nonzero = probs.iter().filter(|&&p| p > 1e-6).count();
        assert!(nonzero > 4, "ansatz should spread amplitude");
    }
}
