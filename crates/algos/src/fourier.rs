//! Quantum Fourier transform, its inverse, and quantum phase estimation.

use qt_circuit::Circuit;
use std::f64::consts::PI;

/// The quantum Fourier transform on `n` qubits, without terminal swaps.
///
/// After `qft`, qubit `j` carries the phase `e^{2πi·x / 2^{j+1}}` of the
/// input integer `x` (the phase-basis encoding used by the Draper adder).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for j in (0..n).rev() {
        c.h(j);
        for k in (0..j).rev() {
            c.cp(k, j, PI / (1 << (j - k)) as f64);
        }
    }
    c
}

/// The inverse QFT on `n` qubits, without terminal swaps.
pub fn iqft(n: usize) -> Circuit {
    qft(n).inverse()
}

/// The paper's motivating example (Fig. 2): a 3-qubit iQFT preceded by a
/// state-preparation layer.
///
/// The input is a slightly detuned Fourier state (phase `x = 2.7` in units
/// of the 3-bit grid), so the ideal output concentrates near `|3⟩` without
/// being a point mass — giving the noisy run plenty of fidelity to lose,
/// as in the paper's figure.
pub fn iqft_example() -> Circuit {
    let x = 2.7;
    let mut c = Circuit::new(3);
    for j in 0..3 {
        c.h(j);
        c.p(j, 2.0 * PI * x / (1 << (j + 1)) as f64);
    }
    c.mark_layer();
    c.append(&iqft(3));
    c
}

/// Quantum phase estimation of the phase gate `P(2π·phase)` with `n_count`
/// counting qubits.
///
/// Register layout: counting qubits `0..n_count` (qubit `k` controls
/// `U^{2^k}`), eigenstate target at index `n_count` (prepared in `|1⟩`).
/// Measure the counting qubits; the outcome integer after the inverse QFT
/// estimates `phase · 2^n_count` (exact when `phase` has `n_count` bits).
pub fn qpe(n_count: usize, phase: f64) -> Circuit {
    let n = n_count + 1;
    let target = n_count;
    let mut c = Circuit::new(n);
    // Eigenstate |1⟩ of P(θ) with eigenvalue e^{iθ}.
    c.x(target);
    for k in 0..n_count {
        c.h(k);
    }
    c.mark_layer();
    // Controlled powers: counting qubit k controls U^{2^{n_count−1−k}},
    // matching the no-swap iQFT's phase-encoding convention (qubit j of the
    // QFT image carries e^{2πi·x / 2^{j+1}}), so that the estimate reads out
    // little-endian on the counting register with no terminal swaps.
    for k in 0..n_count {
        let theta = 2.0 * PI * phase * (1u64 << (n_count - 1 - k)) as f64;
        c.cp(k, target, theta);
    }
    c.mark_layer();
    c.append(&iqft(n_count));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_sim::StateVector;

    #[test]
    fn qft_then_iqft_is_identity() {
        for n in 1..=4 {
            let mut c = qft(n);
            c.append(&iqft(n));
            assert!(c
                .unitary()
                .approx_eq_up_to_phase(&qt_math::Matrix::identity(1 << n), 1e-9));
        }
    }

    #[test]
    fn qft_phase_encoding_is_correct() {
        // For input x, qubit j must carry relative phase e^{2πi x / 2^{j+1}}.
        let n = 3;
        for x in 0..(1usize << n) {
            let mut c = Circuit::new(n);
            for q in 0..n {
                if (x >> q) & 1 == 1 {
                    c.x(q);
                }
            }
            c.append(&qft(n));
            let sv = StateVector::from_circuit(&c);
            // The state is a product; qubit j's ⟨X⟩ should be
            // cos(2π x / 2^{j+1}).
            for j in 0..n {
                let expect = (2.0 * PI * x as f64 / (1 << (j + 1)) as f64).cos();
                let got = sv
                    .expectation_pauli(&qt_math::PauliString::single(n, j, qt_math::Pauli::X))
                    .re;
                assert!(
                    (got - expect).abs() < 1e-9,
                    "x={x} qubit {j}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn qpe_exact_phase_peaks_deterministically() {
        // phase = 3/8 with 3 counting qubits: outcome must be 3 w.p. 1.
        let c = qpe(3, 3.0 / 8.0);
        let sv = StateVector::from_circuit(&c);
        let probs = sv.marginal_probabilities(&[0, 1, 2]);
        assert!((probs[3] - 1.0).abs() < 1e-9, "{probs:?}");
    }

    #[test]
    fn qpe_inexact_phase_concentrates_near_truth() {
        let n_count = 4;
        let phase = 1.0 / 3.0;
        let c = qpe(n_count, phase);
        let sv = StateVector::from_circuit(&c);
        let probs = sv.marginal_probabilities(&[0, 1, 2, 3]);
        // The two outcomes around phase·16 ≈ 5.33 carry the most mass.
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(best == 5 || best == 6, "peak at {best}: {probs:?}");
        assert!(probs[5] + probs[6] > 0.55);
    }

    #[test]
    fn qpe_layers_are_marked() {
        let c = qpe(3, 0.25);
        assert_eq!(c.layer_bounds().len(), 2);
    }

    #[test]
    fn iqft_example_distribution_is_nontrivial() {
        let c = iqft_example();
        let sv = StateVector::from_circuit(&c);
        let probs = sv.probabilities();
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert!(max < 0.9, "distribution too peaked: {probs:?}");
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }
}
