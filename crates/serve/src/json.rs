//! A dependency-free JSON value, parser and writer — the wire codec for
//! the service, in the same vendored-shim spirit as `crates/{rand,
//! proptest,criterion}`: exactly the surface the workspace needs, zero
//! registry dependencies, offline build.
//!
//! Two properties matter for the service contract:
//!
//! * **Exact float round-trips.** Numbers are written with Rust's `{:?}`
//!   formatting (shortest representation that parses back to the same
//!   bits) and re-parsed with `str::parse::<f64>`, so every finite `f64`
//!   survives serialize → parse bit-identically. This is what lets the
//!   end-to-end tests compare served reports against in-process pipeline
//!   runs with `f64::to_bits` equality.
//! * **Typed errors, never panics.** Arbitrary request bytes must yield
//!   [`JsonError`], keeping the server's parse path panic-free.
//!
//! Outcome indices (`u64`) are *not* encoded as JSON numbers — values
//! above 2^53 would be corrupted by readers that go through `f64`. The
//! wire layer encodes them as decimal strings instead (see
//! [`crate::wire`]).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects use a `BTreeMap`, so serialization order is deterministic
/// (sorted keys) regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// A typed JSON parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

impl Json {
    /// Parses a JSON document, requiring the input to be fully consumed.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes to compact JSON (no insignificant whitespace); also
    /// available as `to_string()` via [`fmt::Display`].
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    // ---- typed accessors (used by the wire layer's `from_json` paths) ----

    /// The value as an object, or a decode error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {}", other.kind())),
        }
    }

    /// The value as an array, or a decode error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(format!("{what}: expected array, got {}", other.kind())),
        }
    }

    /// The value as a string, or a decode error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {}", other.kind())),
        }
    }

    /// The value as a float, or a decode error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(format!("{what}: expected number, got {}", other.kind())),
        }
    }

    /// The value as a non-negative integer, or a decode error naming
    /// `what`. Fails on fractional or out-of-range numbers rather than
    /// truncating.
    pub fn as_usize(&self, what: &str) -> Result<usize, String> {
        let x = self.as_f64(what)?;
        if x.fract() != 0.0 || !(0.0..=(1u64 << 53) as f64).contains(&x) {
            return Err(format!("{what}: expected non-negative integer, got {x}"));
        }
        Ok(x as usize)
    }

    /// The value as a bool, or a decode error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {}", other.kind())),
        }
    }

    /// A decimal-string-encoded `u64` (the wire form of outcome indices
    /// and shot counts — see module docs).
    pub fn as_u64_str(&self, what: &str) -> Result<u64, String> {
        let s = self.as_str(what)?;
        s.parse::<u64>()
            .map_err(|_| format!("{what}: expected decimal u64 string, got {s:?}"))
    }

    /// Field `key` of an object, or a decode error naming `what`.
    pub fn field<'a>(&'a self, key: &str, what: &str) -> Result<&'a Json, String> {
        self.as_obj(what)?
            .get(key)
            .ok_or_else(|| format!("{what}: missing field {key:?}"))
    }

    /// Field `key` of an object if present and non-null.
    pub fn opt_field<'a>(&'a self, key: &str, what: &str) -> Result<Option<&'a Json>, String> {
        Ok(self.as_obj(what)?.get(key).filter(|v| **v != Json::Null))
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Builds a `Json::Obj` from key/value pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A `u64` in its wire form: a decimal string (see module docs).
pub fn u64_str(x: u64) -> Json {
    Json::Str(x.to_string())
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/inf; the wire types only carry finite values,
        // so this arm only exists to keep serialization total.
        out.push_str("null");
    } else if x.trunc() == x
        && x.abs() < 9.007_199_254_740_992e15
        && !(x == 0.0 && x.is_sign_negative())
    {
        // Safe integers (|x| < 2^53) print without the `.0` so foreign
        // clients that format the value back into a path (`/result/3`)
        // interoperate; parsing "3" restores the same f64 exactly.
        out.push_str(&format!("{}", x as i64));
    } else {
        // `{:?}` is shortest-roundtrip: parsing the text restores the
        // exact bits.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {text})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at `pos`.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ascii bytes");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e-3").unwrap(), Json::Num(-2.5e-3));
        assert_eq!(
            Json::parse(r#""a\nb\u0041""#).unwrap(),
            Json::Str("a\nbA".into())
        );
        let doc = Json::parse(r#"{"k":[1,2,{"x":false}],"e":[]}"#).unwrap();
        assert_eq!(doc.field("e", "doc").unwrap(), &Json::Arr(vec![]));
    }

    #[test]
    fn roundtrips_exact_floats() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            5e-324,
        ] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64("x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn rejects_malformed_input_with_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1 2]",
            "01x",
            "\"\\q\"",
            "{\"a\":}",
            "nul",
            "[]]",
            "\u{1}",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn object_serialization_is_deterministic() {
        let a = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = Json::parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn safe_integers_print_without_fraction() {
        // Foreign clients format ids back into URL paths, so integral
        // values must serialize as JSON integers; -0.0 and non-integral
        // values keep the exact shortest-roundtrip form.
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-17.0).to_string(), "-17");
        assert_eq!(
            Json::Num(9_007_199_254_740_991.0).to_string(),
            "9007199254740991"
        );
        assert_eq!(Json::Num(-0.0).to_string(), "-0.0");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn u64_survives_as_string() {
        let big = u64::MAX - 1;
        let j = u64_str(big);
        let back = Json::parse(&j.to_string())
            .unwrap()
            .as_u64_str("x")
            .unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(Json::parse(&deep).is_err());
    }
}
