//! The `qt_serve` binary: boots the mitigation service on a TCP address
//! and runs until killed.
//!
//! ```text
//! qt_serve [ADDR]          # default 127.0.0.1:7878
//! ```
//!
//! The runner is a density-matrix executor under the workspace's default
//! depolarizing + readout noise, so served results are deterministic and
//! bit-identical to in-process `run_qutracer` calls with the same model.

use qt_serve::{serve, ServiceConfig};
use qt_sim::{Backend, Executor, NoiseModel};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let runner = Executor::with_backend(
        NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
        Backend::DensityMatrix,
    );
    let config = ServiceConfig::default();
    let server = match serve(&addr, runner, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("qt_serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("qt_serve listening on {}", server.addr());
    println!("endpoints: POST /submit  GET /status/<id>  GET /result/<id>  GET /stats");
    println!("try: curl-free raw TCP — see README \"Mitigation as a service\"");
    // Serve until the process is killed; the handle's threads do the work.
    loop {
        std::thread::park();
    }
}
