//! A small blocking client for the service's HTTP endpoints — what the
//! load generator and the end-to-end tests talk through. One TCP
//! connection per call, mirroring the server's `Connection: close`
//! contract.

use crate::http::{read_message, response_status, write_request};
use crate::json::Json;
use crate::wire;
use qt_circuit::Circuit;
use qt_core::{QuTracerConfig, QuTracerReport};
use std::fmt;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A client-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport failure (connect/read/write).
    Io(String),
    /// The server replied with an error status; carries the wire
    /// `error` kind and message.
    Server {
        /// HTTP status code.
        status: u16,
        /// Machine-readable kind (`"overloaded"`, ...).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// The response body could not be decoded.
    Decode(String),
    /// [`ServiceClient::wait_result`] ran out of time.
    Timeout {
        /// The job that was still unfinished.
        job: u64,
    },
    /// Connecting failed on every attempt of the retry budget — the
    /// service is down or unreachable, not merely slow.
    Unreachable {
        /// Connection attempts spent (the configured budget).
        attempts: u32,
        /// The last connect error observed.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server {
                status,
                kind,
                message,
            } => write!(f, "server error {status} ({kind}): {message}"),
            ClientError::Decode(e) => write!(f, "undecodable response: {e}"),
            ClientError::Timeout { job } => write!(f, "timed out waiting for job {job}"),
            ClientError::Unreachable { attempts, last } => {
                write!(f, "unreachable after {attempts} connect attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// `true` for an admission rejection (HTTP 429) — the client should
    /// back off and retry.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server { status: 429, .. })
    }
}

/// A blocking HTTP client bound to one service address.
///
/// Connection establishment retries transient failures with bounded
/// exponential backoff (see [`ServiceClient::with_connect_retry`]);
/// nothing has been sent yet at that point, so the retry is safe for
/// every endpoint. Failures *after* connecting are surfaced immediately
/// as [`ClientError::Io`] — the request may have reached the server.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    addr: SocketAddr,
    connect_attempts: u32,
    connect_backoff: Duration,
}

impl ServiceClient {
    /// A client for the service at `addr` with the default connect-retry
    /// budget (3 attempts, 1 ms base backoff).
    pub fn new(addr: SocketAddr) -> Self {
        ServiceClient {
            addr,
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(1),
        }
    }

    /// Overrides the connect-retry budget: `attempts` total connection
    /// attempts (minimum 1) with `base_backoff` before the first retry,
    /// doubling per attempt and capped at 100 ms. Once the budget is
    /// spent the call fails with [`ClientError::Unreachable`].
    pub fn with_connect_retry(mut self, attempts: u32, base_backoff: Duration) -> Self {
        self.connect_attempts = attempts.max(1);
        self.connect_backoff = base_backoff;
        self
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let mut backoff = self.connect_backoff;
        let mut last = String::new();
        for attempt in 1..=self.connect_attempts {
            match TcpStream::connect(self.addr) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = e.to_string(),
            }
            if attempt < self.connect_attempts {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
        }
        Err(ClientError::Unreachable {
            attempts: self.connect_attempts,
            last,
        })
    }

    fn call(&self, method: &str, path: &str, body: &str) -> Result<(u16, Json), ClientError> {
        let mut stream = self.connect()?;
        write_request(&mut stream, method, path, body)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let msg = read_message(&mut stream).map_err(|e| ClientError::Io(e.to_string()))?;
        let status = response_status(&msg).map_err(|e| ClientError::Io(e.to_string()))?;
        let doc = Json::parse(&msg.body).map_err(|e| ClientError::Decode(e.to_string()))?;
        if status >= 400 {
            let kind = doc
                .field("error", "error body")
                .and_then(|k| k.as_str("error kind").map(str::to_string))
                .unwrap_or_else(|_| "unknown".to_string());
            let message = doc
                .field("message", "error body")
                .and_then(|m| m.as_str("error message").map(str::to_string))
                .unwrap_or_default();
            return Err(ClientError::Server {
                status,
                kind,
                message,
            });
        }
        Ok((status, doc))
    }

    /// Submits a circuit, returning the job id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with status 429 when the service sheds
    /// load (see [`ClientError::is_overloaded`]).
    pub fn submit(
        &self,
        circuit: &Circuit,
        measured: &[usize],
        config: &QuTracerConfig,
    ) -> Result<u64, ClientError> {
        let body = crate::json::obj([
            ("circuit", wire::circuit_to_json(circuit)),
            (
                "measured",
                Json::Arr(measured.iter().map(|&q| Json::Num(q as f64)).collect()),
            ),
            ("config", wire::config_to_json(config)),
        ])
        .to_string();
        let (_, doc) = self.call("POST", "/submit", &body)?;
        doc.field("job_id", "submit response")
            .and_then(|id| id.as_usize("job_id"))
            .map(|id| id as u64)
            .map_err(ClientError::Decode)
    }

    /// Submits a circuit as a finite-shot mitigation session under
    /// `policy`, returning the job id. The server runs every session
    /// round through its batcher and cache; the served report is
    /// bit-identical to running the same session offline.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::submit`]; additionally HTTP 400 for a malformed
    /// policy and 500 for an unfundable shot budget.
    pub fn submit_sampled(
        &self,
        circuit: &Circuit,
        measured: &[usize],
        config: &QuTracerConfig,
        total_shots: u64,
        policy: &qt_core::ShotPolicy,
        seed: u64,
    ) -> Result<u64, ClientError> {
        let body = crate::json::obj([
            ("circuit", wire::circuit_to_json(circuit)),
            (
                "measured",
                Json::Arr(measured.iter().map(|&q| Json::Num(q as f64)).collect()),
            ),
            ("config", wire::config_to_json(config)),
            (
                "sampling",
                crate::json::obj([
                    ("total_shots", crate::json::u64_str(total_shots)),
                    ("policy", wire::shot_policy_to_json(policy)),
                    ("seed", crate::json::u64_str(seed)),
                ]),
            ),
        ])
        .to_string();
        let (_, doc) = self.call("POST", "/submit", &body)?;
        doc.field("job_id", "submit response")
            .and_then(|id| id.as_usize("job_id"))
            .map(|id| id as u64)
            .map_err(ClientError::Decode)
    }

    /// Fetches a finished report, `None` while the job is in flight.
    pub fn result(&self, job: u64) -> Result<Option<QuTracerReport>, ClientError> {
        let (status, doc) = self.call("GET", &format!("/result/{job}"), "")?;
        if status == 202 {
            return Ok(None);
        }
        wire::report_from_json(&doc)
            .map(Some)
            .map_err(ClientError::Decode)
    }

    /// Polls `result` until the job finishes or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when time runs out; any transport or
    /// server error as soon as it occurs.
    pub fn wait_result(&self, job: u64, timeout: Duration) -> Result<QuTracerReport, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_micros(200);
        loop {
            if let Some(report) = self.result(job)? {
                return Ok(report);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout { job });
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(10));
        }
    }

    /// Raw service counters (the `/stats` document).
    pub fn stats(&self) -> Result<Json, ClientError> {
        Ok(self.call("GET", "/stats", "")?.1)
    }
}
