//! Typed service errors and their HTTP status mapping.

use crate::json::{obj, Json};
use qt_core::{ExecError, PlanError};
use std::fmt;

/// Everything that can go wrong between a request arriving and a report
/// leaving. Admission failures are *values*, never hangs: a full queue
/// rejects with [`ServiceError::Overloaded`] immediately.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded request queue is full; the client should back off and
    /// retry. Carries the configured capacity so clients can size their
    /// backoff.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request body could not be decoded.
    BadRequest(String),
    /// Planning the submitted circuit failed (configuration-level).
    Plan(PlanError),
    /// Executing or recombining the job failed.
    Exec(ExecError),
    /// No job with this id exists.
    NotFound {
        /// The requested job id.
        job: u64,
    },
    /// The job overran the server-side request deadline before a report
    /// could be delivered; its work (if any) was discarded.
    DeadlineExceeded {
        /// The expired job id.
        job: u64,
        /// The configured deadline that was exceeded.
        deadline_millis: u64,
    },
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl ServiceError {
    /// The HTTP status code this error maps to.
    pub fn status_code(&self) -> u16 {
        match self {
            ServiceError::Overloaded { .. } => 429,
            ServiceError::BadRequest(_) => 400,
            ServiceError::Plan(_) => 422,
            ServiceError::Exec(_) => 500,
            ServiceError::NotFound { .. } => 404,
            ServiceError::DeadlineExceeded { .. } => 504,
            ServiceError::ShuttingDown => 503,
        }
    }

    /// A short machine-readable tag (the wire `error` field).
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::Plan(_) => "plan_error",
            ServiceError::Exec(_) => "exec_error",
            ServiceError::NotFound { .. } => "not_found",
            ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServiceError::ShuttingDown => "shutting_down",
        }
    }

    /// The wire form: `{"error": kind, "message": display}`.
    pub fn to_json(&self) -> Json {
        obj([
            ("error", Json::Str(self.kind().into())),
            ("message", Json::Str(self.to_string())),
        ])
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { capacity } => {
                write!(f, "request queue full ({capacity} pending); retry later")
            }
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Plan(e) => write!(f, "planning failed: {e}"),
            ServiceError::Exec(e) => write!(f, "execution failed: {e}"),
            ServiceError::NotFound { job } => write!(f, "no such job: {job}"),
            ServiceError::DeadlineExceeded {
                job,
                deadline_millis,
            } => write!(
                f,
                "job {job} exceeded the {deadline_millis} ms request deadline"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}
