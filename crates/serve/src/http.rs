//! A minimal HTTP/1.1 subset: exactly what the service endpoints need —
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies, no chunked encoding, no keep-alive. Both the server and the
//! blocking client ride on these helpers.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request/response body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request (or response — the shapes coincide for this
/// subset; `path` holds the status line's remainder when parsing
/// responses).
#[derive(Debug)]
pub struct Message {
    /// Request method (`GET`/`POST`), or the protocol token of a
    /// response status line.
    pub method: String,
    /// Request path, or the status code text of a response.
    pub path: String,
    /// The body, limited to [`MAX_BODY_BYTES`].
    pub body: String,
}

/// Reads one HTTP message (head + `Content-Length` body) off `stream`.
pub fn read_message(stream: &mut TcpStream) -> io::Result<Message> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut first_line = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-head",
            ));
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header block too large",
            ));
        }
        if first_line.is_empty() {
            first_line = line.trim_end().to_string();
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }

    let mut parts = first_line.splitn(3, ' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed start line",
        ));
    }

    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not utf-8"))?;
    Ok(Message { method, path, body })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response and flushes; the caller closes the stream.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one request (the client side) and flushes.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: qt-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parses the status code out of a response start line (`path` field of
/// [`read_message`] when reading responses).
pub fn response_status(msg: &Message) -> io::Result<u16> {
    msg.path
        .split(' ')
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))
}
