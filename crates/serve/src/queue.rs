//! The bounded admission queue feeding the cross-request batcher.
//!
//! Producers never block: [`BoundedQueue::try_push`] either enqueues or
//! returns a typed rejection immediately — admission control is a *value*,
//! not a wait. The single consumer drains on a **size-or-deadline**
//! trigger: a drain wakes on the first item, then keeps collecting until
//! either `max` items are pending or `deadline` has elapsed since the
//! wake, whichever comes first. That window is what lets unrelated
//! requests land in one batch and share circuit prefixes downstream.

use qt_sim::{wait_recover, wait_timeout_recover, LockRecoverExt};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed (service shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with non-blocking admission and batched draining.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently pending.
    pub fn len(&self) -> usize {
        self.state.lock_recover().items.len()
    }

    /// `true` once the queue has been closed (admission refuses with
    /// [`PushError::Closed`]) — the service's readiness probe.
    pub fn is_closed(&self) -> bool {
        self.state.lock_recover().closed
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` or rejects immediately — never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock_recover();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is pending (or the queue closes),
    /// then collects up to `max` items, waiting at most `deadline` past
    /// the first wake for stragglers. Returns `None` only when the queue
    /// is closed *and* drained — the consumer's exit signal.
    pub fn drain(&self, max: usize, deadline: Duration) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut state = self.state.lock_recover();
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            state = wait_recover(&self.cv, state);
        }
        let woke = Instant::now();
        while state.items.len() < max && !state.closed {
            let elapsed = woke.elapsed();
            if elapsed >= deadline {
                break;
            }
            let (next, timeout) = wait_timeout_recover(&self.cv, state, deadline - elapsed);
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.items.len().min(max);
        Some(state.items.drain(..take).collect())
    }

    /// Re-enqueues an item the consumer already admitted once — the next
    /// round of a multi-round session going back through the batcher.
    /// Bypasses the capacity bound (the item is not *new* load; rejecting
    /// it would strand a half-finished session) but still respects
    /// closure, so a drain-shutdown fails pending rounds typed instead of
    /// queueing work nobody will drain.
    pub fn requeue(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock_recover();
        if state.closed {
            return Err(PushError::Closed);
        }
        state.items.push_back(item);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`] and
    /// the consumer drains whatever remains, then sees `None`.
    pub fn close(&self) {
        self.state.lock_recover().closed = true;
        self.cv.notify_all();
    }

    /// Closes the queue *and* takes everything still pending, atomically:
    /// nothing taken here can also be drained by the consumer, and the
    /// consumer's next [`BoundedQueue::drain`] sees the exit signal. This
    /// is the fail-queued-work half of a drain-shutdown — the caller owns
    /// the orphans and must resolve them (e.g. with a typed
    /// shutting-down error) so no waiter hangs.
    pub fn close_and_take(&self) -> Vec<T> {
        let mut state = self.state.lock_recover();
        state.closed = true;
        let orphans = state.items.drain(..).collect();
        drop(state);
        self.cv.notify_all();
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_rejects_when_full_without_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_collects_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.drain(3, Duration::from_millis(1)).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q.drain(8, Duration::from_millis(1)).unwrap();
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn size_trigger_returns_before_deadline() {
        let q = Arc::new(BoundedQueue::new(8));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..4 {
                    q.try_push(i).unwrap();
                }
            })
        };
        // A generous deadline: the size trigger (4 items) must fire long
        // before it.
        let batch = q.drain(4, Duration::from_secs(30)).unwrap();
        assert_eq!(batch.len(), 4);
        producer.join().unwrap();
    }

    #[test]
    fn requeue_bypasses_capacity_but_respects_closure() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
        // A session round going back through the batcher is not new load.
        assert_eq!(q.requeue(2), Ok(()));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.requeue(3), Err(PushError::Closed));
        assert_eq!(q.drain(4, Duration::from_millis(1)), Some(vec![1, 2]));
    }

    #[test]
    fn close_and_take_owns_the_orphans_atomically() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let orphans = q.close_and_take();
        assert_eq!(orphans, vec![1, 2]);
        assert!(q.is_closed());
        // The consumer can never see what the closer took.
        assert_eq!(q.drain(4, Duration::from_millis(1)), None);
        assert_eq!(q.try_push(3), Err(PushError::Closed));
    }

    #[test]
    fn close_drains_remainder_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        assert_eq!(q.drain(4, Duration::from_millis(1)), Some(vec![7]));
        assert_eq!(q.drain(4, Duration::from_millis(1)), None);
    }
}
