//! Wire representations: `to_json` / `from_json` for every type that
//! crosses the service boundary.
//!
//! Conventions:
//!
//! * **`u64` as decimal strings.** Outcome indices and shot counts are
//!   full 64-bit values; JSON numbers only survive 53 bits through
//!   `f64`-based readers, so they travel as strings (`"18446744073709551615"`).
//! * **Exact floats.** Probabilities serialize via the codec's
//!   shortest-roundtrip formatting, so a decoded [`Distribution`] is
//!   bit-identical to the encoded one (see [`crate::json`]).
//! * **Typed failures.** Every `from_json` returns `Err(String)` naming
//!   the offending field; nothing in this module panics on bad input.
//!
//! Decoded distributions are rebuilt through the default density policy,
//! so the *representation* (dense vs. sparse `Mass` arm) may differ from
//! the sender's — equality in `qt-dist` compares nonzero streams, and
//! every value round-trips exactly, which is the contract that matters.

use crate::json::{obj, u64_str, Json};
use qt_baselines::OverheadStats;
use qt_circuit::passes::UnsupportedCoupling;
use qt_circuit::{Circuit, Gate};
use qt_core::{
    PlanError, PlanView, QuTracerConfig, QuTracerReport, ShotPolicy, SkippedSubset, TraceConfig,
};
use qt_dist::{Counts, Distribution};
use qt_pcs::QspcStats;
use qt_sim::TrieStats;

fn usize_arr(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect())
}

fn usize_vec(j: &Json, what: &str) -> Result<Vec<usize>, String> {
    j.as_arr(what)?.iter().map(|x| x.as_usize(what)).collect()
}

// ---------------------------------------------------------------- circuits

/// Encodes a circuit as `{n_qubits, gates: [{g, q, p?}...], layers}`.
pub fn circuit_to_json(c: &Circuit) -> Json {
    let gates = c
        .instructions()
        .iter()
        .map(|instr| {
            let params = gate_params(&instr.gate);
            let mut fields = vec![
                ("g", Json::Str(instr.gate.name().to_string())),
                ("q", usize_arr(&instr.qubits)),
            ];
            if !params.is_empty() {
                fields.push((
                    "p",
                    Json::Arr(params.iter().map(|&x| Json::Num(x)).collect()),
                ));
            }
            obj(fields)
        })
        .collect();
    obj([
        ("n_qubits", Json::Num(c.n_qubits() as f64)),
        ("gates", Json::Arr(gates)),
        ("layers", usize_arr(c.layer_bounds())),
    ])
}

/// Decodes [`circuit_to_json`]'s form, validating operand counts, operand
/// ranges and layer bounds before touching the (panicking) builder API.
pub fn circuit_from_json(j: &Json) -> Result<Circuit, String> {
    let n_qubits = j
        .field("n_qubits", "circuit")?
        .as_usize("circuit.n_qubits")?;
    if n_qubits == 0 || n_qubits > 64 {
        return Err(format!("circuit.n_qubits: {n_qubits} outside 1..=64"));
    }
    let gates = j.field("gates", "circuit")?.as_arr("circuit.gates")?;
    let layers = usize_vec(j.field("layers", "circuit")?, "circuit.layers")?;

    let mut c = Circuit::new(n_qubits);
    let mut bounds = layers.iter().peekable();
    for (i, gj) in gates.iter().enumerate() {
        let what = format!("circuit.gates[{i}]");
        while bounds.peek() == Some(&&i) {
            c.mark_layer();
            bounds.next();
        }
        let name = gj.field("g", &what)?.as_str(&what)?;
        let params: Vec<f64> = match gj.opt_field("p", &what)? {
            Some(p) => p
                .as_arr(&what)?
                .iter()
                .map(|x| x.as_f64(&what))
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let qubits = usize_vec(gj.field("q", &what)?, &what)?;
        let gate = gate_from_name(name, &params)
            .ok_or_else(|| format!("{what}: unknown gate {name:?} with {} params", params.len()))?;
        if gate.n_qubits() != qubits.len() {
            return Err(format!(
                "{what}: gate {name} expects {} operands, got {}",
                gate.n_qubits(),
                qubits.len()
            ));
        }
        for (k, &q) in qubits.iter().enumerate() {
            if q >= n_qubits {
                return Err(format!(
                    "{what}: operand {q} outside register of {n_qubits}"
                ));
            }
            if qubits[..k].contains(&q) {
                return Err(format!("{what}: repeated operand {q}"));
            }
        }
        c.push(gate, qubits);
    }
    let n = gates.len();
    for &b in bounds {
        if b != n {
            return Err(format!(
                "circuit.layers: bound {b} out of order (circuit has {n} gates)"
            ));
        }
        c.mark_layer();
    }
    Ok(c)
}

fn gate_params(g: &Gate) -> Vec<f64> {
    use Gate::*;
    match *g {
        Rx(a) | Ry(a) | Rz(a) | Phase(a) | Cp(a) | Crz(a) | Crx(a) | Cry(a) | Ccp(a) => vec![a],
        U(a, b, c) => vec![a, b, c],
        _ => Vec::new(),
    }
}

fn gate_from_name(name: &str, p: &[f64]) -> Option<Gate> {
    use Gate::*;
    Some(match (name, p) {
        ("h", []) => H,
        ("x", []) => X,
        ("y", []) => Y,
        ("z", []) => Z,
        ("s", []) => S,
        ("sdg", []) => Sdg,
        ("t", []) => T,
        ("tdg", []) => Tdg,
        ("sx", []) => Sx,
        ("rx", &[a]) => Rx(a),
        ("ry", &[a]) => Ry(a),
        ("rz", &[a]) => Rz(a),
        ("p", &[a]) => Phase(a),
        ("u", &[a, b, c]) => U(a, b, c),
        ("cx", []) => Cx,
        ("cy", []) => Cy,
        ("cz", []) => Cz,
        ("cp", &[a]) => Cp(a),
        ("crz", &[a]) => Crz(a),
        ("crx", &[a]) => Crx(a),
        ("cry", &[a]) => Cry(a),
        ("swap", []) => Swap,
        ("ccp", &[a]) => Ccp(a),
        _ => return None,
    })
}

// ----------------------------------------------------- distributions/counts

/// Encodes a distribution as `{bits, entries: [["idx", p]...]}` with
/// ascending string-encoded outcome indices and exact probabilities.
pub fn distribution_to_json(d: &Distribution) -> Json {
    let entries = d
        .iter()
        .map(|(idx, p)| Json::Arr(vec![u64_str(idx), Json::Num(p)]))
        .collect();
    obj([
        ("bits", Json::Num(d.n_bits() as f64)),
        ("entries", Json::Arr(entries)),
    ])
}

/// Decodes [`distribution_to_json`]'s form.
pub fn distribution_from_json(j: &Json) -> Result<Distribution, String> {
    let bits = j
        .field("bits", "distribution")?
        .as_usize("distribution.bits")?;
    let entries = j
        .field("entries", "distribution")?
        .as_arr("distribution.entries")?
        .iter()
        .map(|e| {
            let pair = e.as_arr("distribution entry")?;
            if pair.len() != 2 {
                return Err("distribution entry: expected [index, prob] pair".to_string());
            }
            Ok((
                pair[0].as_u64_str("distribution outcome")?,
                pair[1].as_f64("distribution prob")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Distribution::try_from_entries(bits, entries).map_err(|e| format!("distribution: {e}"))
}

/// Encodes a count table as `{bits, entries: [["idx", "count"]...]}` —
/// both sides string-encoded (counts are full `u64`s too).
pub fn counts_to_json(c: &Counts) -> Json {
    let entries = c
        .iter()
        .map(|(idx, n)| Json::Arr(vec![u64_str(idx), u64_str(n)]))
        .collect();
    obj([
        ("bits", Json::Num(c.n_bits() as f64)),
        ("entries", Json::Arr(entries)),
    ])
}

/// Decodes [`counts_to_json`]'s form.
pub fn counts_from_json(j: &Json) -> Result<Counts, String> {
    let bits = j.field("bits", "counts")?.as_usize("counts.bits")?;
    let entries = j
        .field("entries", "counts")?
        .as_arr("counts.entries")?
        .iter()
        .map(|e| {
            let pair = e.as_arr("counts entry")?;
            if pair.len() != 2 {
                return Err("counts entry: expected [index, count] pair".to_string());
            }
            Ok((
                pair[0].as_u64_str("counts outcome")?,
                pair[1].as_u64_str("counts value")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Counts::try_from_entries(bits, entries).map_err(|e| format!("counts: {e}"))
}

// ------------------------------------------------------------------- stats

/// Encodes [`TrieStats`] field-by-field.
pub fn trie_stats_to_json(s: &TrieStats) -> Json {
    obj([
        ("n_jobs", Json::Num(s.n_jobs as f64)),
        ("n_nodes", Json::Num(s.n_nodes as f64)),
        ("request_gates", Json::Num(s.request_gates as f64)),
        ("unique_gates", Json::Num(s.unique_gates as f64)),
        ("interior_gates", Json::Num(s.interior_gates as f64)),
    ])
}

/// Decodes [`trie_stats_to_json`]'s form.
pub fn trie_stats_from_json(j: &Json) -> Result<TrieStats, String> {
    Ok(TrieStats {
        n_jobs: j.field("n_jobs", "trie_stats")?.as_usize("n_jobs")?,
        n_nodes: j.field("n_nodes", "trie_stats")?.as_usize("n_nodes")?,
        request_gates: j
            .field("request_gates", "trie_stats")?
            .as_usize("request_gates")?,
        unique_gates: j
            .field("unique_gates", "trie_stats")?
            .as_usize("unique_gates")?,
        interior_gates: j
            .field("interior_gates", "trie_stats")?
            .as_usize("interior_gates")?,
    })
}

/// Encodes [`qt_sim::FailureStats`] field-by-field (u64s as decimal
/// strings, like every other u64 on the wire).
pub fn failure_stats_to_json(s: &qt_sim::FailureStats) -> Json {
    obj([
        ("retries", u64_str(s.retries)),
        ("retried_jobs", u64_str(s.retried_jobs)),
        ("failed_jobs", u64_str(s.failed_jobs)),
        ("isolated_panics", u64_str(s.isolated_panics)),
        ("corrupt_outputs", u64_str(s.corrupt_outputs)),
        ("voided_subsets", u64_str(s.voided_subsets)),
    ])
}

/// Decodes [`failure_stats_to_json`]'s form.
pub fn failure_stats_from_json(j: &Json) -> Result<qt_sim::FailureStats, String> {
    let get =
        |name: &str| -> Result<u64, String> { j.field(name, "failure_stats")?.as_u64_str(name) };
    Ok(qt_sim::FailureStats {
        retries: get("retries")?,
        retried_jobs: get("retried_jobs")?,
        failed_jobs: get("failed_jobs")?,
        isolated_panics: get("isolated_panics")?,
        corrupt_outputs: get("corrupt_outputs")?,
        voided_subsets: get("voided_subsets")?,
    })
}

/// Encodes [`OverheadStats`]; optional fields serialize as `null`.
pub fn overhead_stats_to_json(s: &OverheadStats) -> Json {
    obj([
        ("n_circuits", Json::Num(s.n_circuits as f64)),
        ("normalized_shots", Json::Num(s.normalized_shots)),
        ("avg_two_qubit_gates", Json::Num(s.avg_two_qubit_gates)),
        (
            "global_two_qubit_gates",
            Json::Num(s.global_two_qubit_gates as f64),
        ),
        (
            "batch",
            s.batch.as_ref().map_or(Json::Null, trie_stats_to_json),
        ),
        ("total_shots", s.total_shots.map_or(Json::Null, u64_str)),
        (
            "round_shots",
            s.round_shots.as_ref().map_or(Json::Null, |rounds| {
                Json::Arr(rounds.iter().map(|&r| u64_str(r)).collect())
            }),
        ),
        (
            "engine_mix",
            s.engine_mix.as_ref().map_or(Json::Null, |mix| {
                Json::Arr(
                    mix.iter()
                        .map(|(name, n)| {
                            Json::Arr(vec![Json::Str(name.clone()), Json::Num(*n as f64)])
                        })
                        .collect(),
                )
            }),
        ),
        (
            "failures",
            s.failures
                .as_ref()
                .map_or(Json::Null, failure_stats_to_json),
        ),
    ])
}

/// Decodes [`overhead_stats_to_json`]'s form.
pub fn overhead_stats_from_json(j: &Json) -> Result<OverheadStats, String> {
    let engine_mix = match j.opt_field("engine_mix", "overhead_stats")? {
        None => None,
        Some(mix) => Some(
            mix.as_arr("engine_mix")?
                .iter()
                .map(|e| {
                    let pair = e.as_arr("engine_mix entry")?;
                    if pair.len() != 2 {
                        return Err("engine_mix entry: expected [engine, count]".to_string());
                    }
                    Ok((
                        pair[0].as_str("engine name")?.to_string(),
                        pair[1].as_usize("engine count")?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
        ),
    };
    Ok(OverheadStats {
        n_circuits: j
            .field("n_circuits", "overhead_stats")?
            .as_usize("n_circuits")?,
        normalized_shots: j
            .field("normalized_shots", "overhead_stats")?
            .as_f64("normalized_shots")?,
        avg_two_qubit_gates: j
            .field("avg_two_qubit_gates", "overhead_stats")?
            .as_f64("avg_two_qubit_gates")?,
        global_two_qubit_gates: j
            .field("global_two_qubit_gates", "overhead_stats")?
            .as_usize("global_two_qubit_gates")?,
        batch: j
            .opt_field("batch", "overhead_stats")?
            .map(trie_stats_from_json)
            .transpose()?,
        total_shots: j
            .opt_field("total_shots", "overhead_stats")?
            .map(|v| v.as_u64_str("total_shots"))
            .transpose()?,
        round_shots: j
            .opt_field("round_shots", "overhead_stats")?
            .map(|v| {
                v.as_arr("round_shots")?
                    .iter()
                    .map(|r| r.as_u64_str("round_shots entry"))
                    .collect::<Result<Vec<u64>, String>>()
            })
            .transpose()?,
        engine_mix,
        failures: j
            .opt_field("failures", "overhead_stats")?
            .map(failure_stats_from_json)
            .transpose()?,
    })
}

fn qspc_stats_to_json(s: &QspcStats) -> Json {
    obj([
        ("n_circuits", Json::Num(s.n_circuits as f64)),
        ("total_gates", Json::Num(s.total_gates as f64)),
        (
            "total_two_qubit_gates",
            Json::Num(s.total_two_qubit_gates as f64),
        ),
        (
            "max_two_qubit_gates",
            Json::Num(s.max_two_qubit_gates as f64),
        ),
    ])
}

fn qspc_stats_from_json(j: &Json) -> Result<QspcStats, String> {
    Ok(QspcStats {
        n_circuits: j
            .field("n_circuits", "qspc_stats")?
            .as_usize("n_circuits")?,
        total_gates: j
            .field("total_gates", "qspc_stats")?
            .as_usize("total_gates")?,
        total_two_qubit_gates: j
            .field("total_two_qubit_gates", "qspc_stats")?
            .as_usize("total_two_qubit_gates")?,
        max_two_qubit_gates: j
            .field("max_two_qubit_gates", "qspc_stats")?
            .as_usize("max_two_qubit_gates")?,
    })
}

// ------------------------------------------------------------ plan errors

fn plan_error_to_json(e: &PlanError) -> Json {
    match e {
        PlanError::UnsupportedSubsetSize { size } => obj([
            ("kind", Json::Str("unsupported_subset_size".into())),
            ("size", Json::Num(*size as f64)),
        ]),
        PlanError::MeasuredTooSmall { needed, got } => obj([
            ("kind", Json::Str("measured_too_small".into())),
            ("needed", Json::Num(*needed as f64)),
            ("got", Json::Num(*got as f64)),
        ]),
        PlanError::UnsupportedCoupling { subset, source } => obj([
            ("kind", Json::Str("unsupported_coupling".into())),
            ("subset", usize_arr(subset)),
            ("index", Json::Num(source.index as f64)),
            ("instruction", Json::Str(source.instruction.clone())),
        ]),
    }
}

fn plan_error_from_json(j: &Json) -> Result<PlanError, String> {
    let kind = j.field("kind", "plan_error")?.as_str("plan_error.kind")?;
    match kind {
        "unsupported_subset_size" => Ok(PlanError::UnsupportedSubsetSize {
            size: j.field("size", "plan_error")?.as_usize("size")?,
        }),
        "measured_too_small" => Ok(PlanError::MeasuredTooSmall {
            needed: j.field("needed", "plan_error")?.as_usize("needed")?,
            got: j.field("got", "plan_error")?.as_usize("got")?,
        }),
        "unsupported_coupling" => Ok(PlanError::UnsupportedCoupling {
            subset: usize_vec(j.field("subset", "plan_error")?, "subset")?,
            source: UnsupportedCoupling {
                index: j.field("index", "plan_error")?.as_usize("index")?,
                instruction: j
                    .field("instruction", "plan_error")?
                    .as_str("instruction")?
                    .to_string(),
            },
        }),
        other => Err(format!("plan_error.kind: unknown variant {other:?}")),
    }
}

fn skipped_to_json(s: &SkippedSubset) -> Json {
    obj([
        ("qubits", usize_arr(&s.qubits)),
        ("positions", usize_arr(&s.positions)),
        ("reason", plan_error_to_json(&s.reason)),
    ])
}

fn skipped_from_json(j: &Json) -> Result<SkippedSubset, String> {
    Ok(SkippedSubset {
        qubits: usize_vec(j.field("qubits", "skipped")?, "skipped.qubits")?,
        positions: usize_vec(j.field("positions", "skipped")?, "skipped.positions")?,
        reason: plan_error_from_json(j.field("reason", "skipped")?)?,
    })
}

// ----------------------------------------------------------------- reports

/// Encodes a full [`QuTracerReport`].
pub fn report_to_json(r: &QuTracerReport) -> Json {
    obj([
        ("distribution", distribution_to_json(&r.distribution)),
        ("global", distribution_to_json(&r.global)),
        (
            "locals",
            Json::Arr(
                r.locals
                    .iter()
                    .map(|(d, pos)| {
                        obj([
                            ("distribution", distribution_to_json(d)),
                            ("positions", usize_arr(pos)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(r.skipped.iter().map(skipped_to_json).collect()),
        ),
        ("stats", overhead_stats_to_json(&r.stats)),
        (
            "subset_stats",
            Json::Arr(r.subset_stats.iter().map(qspc_stats_to_json).collect()),
        ),
    ])
}

/// Decodes [`report_to_json`]'s form.
pub fn report_from_json(j: &Json) -> Result<QuTracerReport, String> {
    let locals = j
        .field("locals", "report")?
        .as_arr("report.locals")?
        .iter()
        .map(|l| {
            Ok((
                distribution_from_json(l.field("distribution", "local")?)?,
                usize_vec(l.field("positions", "local")?, "local.positions")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let skipped = j
        .field("skipped", "report")?
        .as_arr("report.skipped")?
        .iter()
        .map(skipped_from_json)
        .collect::<Result<Vec<_>, String>>()?;
    let subset_stats = j
        .field("subset_stats", "report")?
        .as_arr("report.subset_stats")?
        .iter()
        .map(qspc_stats_from_json)
        .collect::<Result<Vec<_>, String>>()?;
    Ok(QuTracerReport {
        distribution: distribution_from_json(j.field("distribution", "report")?)?,
        global: distribution_from_json(j.field("global", "report")?)?,
        locals,
        skipped,
        stats: overhead_stats_from_json(j.field("stats", "report")?)?,
        subset_stats,
    })
}

// ------------------------------------------------------------------ config

/// Encodes a [`QuTracerConfig`] (flat: trace options inline).
pub fn config_to_json(c: &QuTracerConfig) -> Json {
    obj([
        ("subset_size", Json::Num(c.subset_size as f64)),
        ("symmetric_subsets", Json::Bool(c.symmetric_subsets)),
        ("optimize_circuits", Json::Bool(c.trace.optimize_circuits)),
        ("state_traceback", Json::Bool(c.trace.state_traceback)),
        (
            "checked_layers",
            c.trace
                .checked_layers
                .map_or(Json::Null, |k| Json::Num(k as f64)),
        ),
        ("use_reduced_preps", Json::Bool(c.trace.use_reduced_preps)),
        ("den_floor", Json::Num(c.trace.den_floor)),
    ])
}

/// Decodes [`config_to_json`]'s form. Every field is optional and
/// defaults to [`QuTracerConfig::default`]'s value, so clients may send
/// `{}` or just `{"subset_size": 2}`.
pub fn config_from_json(j: &Json) -> Result<QuTracerConfig, String> {
    let mut c = QuTracerConfig::default();
    let mut t = TraceConfig::default();
    if let Some(v) = j.opt_field("subset_size", "config")? {
        c.subset_size = v.as_usize("config.subset_size")?;
    }
    if let Some(v) = j.opt_field("symmetric_subsets", "config")? {
        c.symmetric_subsets = v.as_bool("config.symmetric_subsets")?;
    }
    if let Some(v) = j.opt_field("optimize_circuits", "config")? {
        t.optimize_circuits = v.as_bool("config.optimize_circuits")?;
    }
    if let Some(v) = j.opt_field("state_traceback", "config")? {
        t.state_traceback = v.as_bool("config.state_traceback")?;
    }
    if let Some(v) = j.opt_field("checked_layers", "config")? {
        t.checked_layers = Some(v.as_usize("config.checked_layers")?);
    }
    if let Some(v) = j.opt_field("use_reduced_preps", "config")? {
        t.use_reduced_preps = v.as_bool("config.use_reduced_preps")?;
    }
    if let Some(v) = j.opt_field("den_floor", "config")? {
        t.den_floor = v.as_f64("config.den_floor")?;
    }
    c.trace = t;
    Ok(c)
}

/// Encodes a [`ShotPolicy`] as a variant-tagged object:
/// `{"kind":"uniform"}`, `{"kind":"weighted_by_fanout"}` or
/// `{"kind":"adaptive","pilot_fraction":0.25}`.
pub fn shot_policy_to_json(p: &ShotPolicy) -> Json {
    match p {
        ShotPolicy::Uniform => obj([("kind", Json::Str("uniform".into()))]),
        ShotPolicy::WeightedByFanout => obj([("kind", Json::Str("weighted_by_fanout".into()))]),
        ShotPolicy::Adaptive { pilot_fraction } => obj([
            ("kind", Json::Str("adaptive".into())),
            ("pilot_fraction", Json::Num(*pilot_fraction)),
        ]),
    }
}

/// Decodes [`shot_policy_to_json`]'s form, rejecting unknown variants and
/// adaptive pilot fractions outside `[0, 1]` (or non-finite ones) at the
/// boundary — a malformed policy never reaches the session layer.
pub fn shot_policy_from_json(j: &Json) -> Result<ShotPolicy, String> {
    let kind = j.field("kind", "shot_policy")?.as_str("shot_policy.kind")?;
    match kind {
        "uniform" => Ok(ShotPolicy::Uniform),
        "weighted_by_fanout" => Ok(ShotPolicy::WeightedByFanout),
        "adaptive" => {
            let pilot_fraction = j
                .field("pilot_fraction", "shot_policy")?
                .as_f64("shot_policy.pilot_fraction")?;
            if !pilot_fraction.is_finite() || !(0.0..=1.0).contains(&pilot_fraction) {
                return Err(format!(
                    "shot_policy.pilot_fraction: {pilot_fraction} outside [0, 1]"
                ));
            }
            Ok(ShotPolicy::Adaptive { pilot_fraction })
        }
        other => Err(format!("shot_policy.kind: unknown variant {other:?}")),
    }
}

/// Encodes a [`PlanView`] (status-endpoint payload for queued jobs).
pub fn plan_view_to_json(v: &PlanView) -> Json {
    obj([
        ("n_qubits", Json::Num(v.n_qubits as f64)),
        ("measured", usize_arr(&v.measured)),
        ("n_programs", Json::Num(v.n_programs as f64)),
        ("n_requests", Json::Num(v.n_requests as f64)),
        ("n_subsets", Json::Num(v.n_subsets as f64)),
        ("n_skipped", Json::Num(v.n_skipped as f64)),
        ("shared_gate_fraction", Json::Num(v.shared_gate_fraction)),
    ])
}
