//! The service engine: admission, the cross-request batcher, the shared
//! result cache and the job registry. HTTP is a thin shell over this
//! module (see [`crate::server`]); tests can drive the engine directly.
//!
//! # Data flow
//!
//! ```text
//! submit ──plan──▶ bounded queue ──drain (size-or-deadline)──▶ batcher
//!                                                               │
//!                       ┌───────────────────────────────────────┘
//!                       ▼
//!          dedup all requests' jobs (JobInterner)
//!                       │ per distinct job
//!            cache hit ◀┴▶ miss ──▶ ONE run_batch over all misses
//!                       │            (trie merges shared prefixes
//!                       │             across unrelated requests)
//!                       ▼
//!      scatter per request ─▶ artifacts_from_outputs ─▶ recombine
//! ```
//!
//! Every served report is bit-identical to a one-shot
//! `run_qutracer` call with the same runner: plan-order jobs, trie
//! execution and cache hits are all exact — the end-to-end tests assert
//! this with `f64::to_bits` equality through the wire format.

use crate::error::ServiceError;
use crate::queue::{BoundedQueue, PushError};
use qt_circuit::Circuit;
use qt_core::{MitigationPlan, PlanView, QuTracer, QuTracerConfig, QuTracerReport};
use qt_sim::cache::{run_output_weight, CacheStats, ShardedLruCache};
use qt_sim::{batch_trie_stats, BatchJob, JobInterner, RunOutput, Runner, TrieStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one service instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Admission bound: requests pending beyond this are rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Drain size trigger: a batch closes as soon as this many requests
    /// are pending.
    pub batch_max_requests: usize,
    /// Drain deadline trigger: a batch closes at most this long after its
    /// first request arrives, full or not.
    pub batch_deadline: Duration,
    /// Byte budget of the shared result cache; `0` disables caching.
    pub cache_bytes: usize,
    /// Shard count of the result cache (rounded up to a power of two).
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            batch_max_requests: 8,
            batch_deadline: Duration::from_millis(2),
            cache_bytes: 32 << 20,
            cache_shards: 8,
        }
    }
}

impl ServiceConfig {
    /// A configuration with batching and caching effectively disabled —
    /// every request executes alone (the load generator's per-request
    /// baseline arm).
    pub fn per_request(self) -> Self {
        ServiceConfig {
            batch_max_requests: 1,
            cache_bytes: 0,
            ..self
        }
    }
}

/// Where a submitted job currently is.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Planned and admitted, waiting for a batch.
    Queued(PlanView),
    /// Part of the batch currently executing.
    Running(PlanView),
    /// Finished; the report is ready.
    Done(Arc<QuTracerReport>),
    /// Execution or recombination failed.
    Failed(ServiceError),
}

impl JobState {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued(_) => "queued",
            JobState::Running(_) => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One admitted request travelling from `submit` to the batcher.
struct Ticket {
    id: u64,
    plan: MitigationPlan,
}

/// A point-in-time snapshot of the service's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests admitted (planned and queued).
    pub submitted: u64,
    /// Requests rejected at admission ([`ServiceError::Overloaded`]).
    pub rejected: u64,
    /// Requests finished with a report.
    pub completed: u64,
    /// Requests finished with an error.
    pub failed: u64,
    /// Requests currently pending in the queue.
    pub queue_depth: usize,
    /// Batches drained so far.
    pub batches: u64,
    /// Requests across all drained batches (`batched_requests / batches`
    /// is the achieved batch size).
    pub batched_requests: u64,
    /// Distinct jobs after cross-request dedup, across all batches.
    pub distinct_jobs: u64,
    /// Distinct jobs served from the result cache.
    pub cache_hit_jobs: u64,
    /// Distinct jobs actually executed.
    pub executed_jobs: u64,
    /// Result-cache counters (zeroes when the cache is disabled).
    pub cache: CacheStats,
    /// Accumulated prefix-sharing statistics of the executed (miss)
    /// batches — how much gate work cross-request merging shared.
    pub batch_trie: TrieStats,
}

/// The long-running mitigation engine behind the HTTP front-end.
pub struct MitigationService<R> {
    runner: R,
    config: ServiceConfig,
    queue: BoundedQueue<Ticket>,
    jobs: Mutex<HashMap<u64, JobState>>,
    /// Signalled whenever a job reaches a terminal state.
    done_cv: Condvar,
    next_id: AtomicU64,
    cache: Option<ShardedLruCache<RunOutput>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    distinct_jobs: AtomicU64,
    cache_hit_jobs: AtomicU64,
    executed_jobs: AtomicU64,
    batch_trie: Mutex<TrieStats>,
}

impl<R: Runner + Send + Sync + 'static> MitigationService<R> {
    /// A service executing on `runner` under `config`. The batcher thread
    /// is *not* started — call [`MitigationService::spawn_batcher`] (or
    /// drive [`MitigationService::process_next_batch`] manually in tests).
    pub fn new(runner: R, config: ServiceConfig) -> Arc<Self> {
        let cache = (config.cache_bytes > 0)
            .then(|| ShardedLruCache::new(config.cache_bytes, config.cache_shards));
        Arc::new(MitigationService {
            runner,
            config,
            queue: BoundedQueue::new(config.queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            cache,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            distinct_jobs: AtomicU64::new(0),
            cache_hit_jobs: AtomicU64::new(0),
            executed_jobs: AtomicU64::new(0),
            batch_trie: Mutex::new(TrieStats::default()),
        })
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Starts the batcher thread draining the queue until
    /// [`MitigationService::shutdown`]. Join the handle to wait for a
    /// clean drain.
    pub fn spawn_batcher(self: &Arc<Self>) -> JoinHandle<()> {
        let service = Arc::clone(self);
        std::thread::spawn(move || while service.process_next_batch() {})
    }

    /// Plans `circuit` and admits the job, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Plan`] when planning fails,
    /// [`ServiceError::Overloaded`] when the queue is full,
    /// [`ServiceError::ShuttingDown`] after [`MitigationService::shutdown`].
    pub fn submit(
        &self,
        circuit: &Circuit,
        measured: &[usize],
        config: &QuTracerConfig,
    ) -> Result<u64, ServiceError> {
        let plan = QuTracer::plan(circuit, measured, config).map_err(ServiceError::Plan)?;
        let view = plan.view();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().unwrap().insert(id, JobState::Queued(view));
        match self.queue.try_push(Ticket { id, plan }) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(id)
            }
            Err(e) => {
                self.jobs.lock().unwrap().remove(&id);
                match e {
                    PushError::Full => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        Err(ServiceError::Overloaded {
                            capacity: self.queue.capacity(),
                        })
                    }
                    PushError::Closed => Err(ServiceError::ShuttingDown),
                }
            }
        }
    }

    /// The current state of job `id`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotFound`] for unknown ids.
    pub fn status(&self, id: u64) -> Result<JobState, ServiceError> {
        self.jobs
            .lock()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or(ServiceError::NotFound { job: id })
    }

    /// The finished report for job `id`, `None` while it is still in
    /// flight.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotFound`] for unknown ids; the job's own error if
    /// it failed.
    pub fn result(&self, id: u64) -> Result<Option<Arc<QuTracerReport>>, ServiceError> {
        match self.status(id)? {
            JobState::Done(report) => Ok(Some(report)),
            JobState::Failed(e) => Err(e),
            _ => Ok(None),
        }
    }

    /// Blocks until job `id` reaches a terminal state, up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotFound`] for unknown ids *and* for timeouts (the
    /// job is still unfinished — callers distinguish via
    /// [`MitigationService::status`]); the job's own error if it failed.
    pub fn wait_result(
        &self,
        id: u64,
        timeout: Duration,
    ) -> Result<Arc<QuTracerReport>, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            match jobs.get(&id) {
                None => return Err(ServiceError::NotFound { job: id }),
                Some(JobState::Done(report)) => return Ok(Arc::clone(report)),
                Some(JobState::Failed(e)) => return Err(e.clone()),
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServiceError::NotFound { job: id });
                    }
                    let (next, _) = self.done_cv.wait_timeout(jobs, deadline - now).unwrap();
                    jobs = next;
                }
            }
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            distinct_jobs: self.distinct_jobs.load(Ordering::Relaxed),
            cache_hit_jobs: self.cache_hit_jobs.load(Ordering::Relaxed),
            executed_jobs: self.executed_jobs.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            batch_trie: *self.batch_trie.lock().unwrap(),
        }
    }

    /// Result-cache counters (the satellite `cache_stats()` surface;
    /// all-zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Stops admission and lets the batcher drain what is already queued;
    /// its thread exits afterwards.
    pub fn shutdown(&self) {
        self.queue.close();
    }

    /// Drains and processes one batch. Returns `false` once the queue is
    /// closed and empty — the batcher's exit condition.
    pub fn process_next_batch(&self) -> bool {
        let Some(batch) = self
            .queue
            .drain(self.config.batch_max_requests, self.config.batch_deadline)
        else {
            return false;
        };
        self.process_batch(batch);
        true
    }

    /// Executes one drained batch: cross-request dedup, cache lookups,
    /// one merged `run_batch` over the misses, then per-request scatter
    /// and recombination.
    fn process_batch(&self, batch: Vec<Ticket>) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        {
            let mut jobs = self.jobs.lock().unwrap();
            for ticket in &batch {
                if let Some(state) = jobs.get_mut(&ticket.id) {
                    if let JobState::Queued(view) = state {
                        *state = JobState::Running(view.clone());
                    }
                }
            }
        }

        // Cross-request dedup: every request's plan-order jobs land in one
        // shared table; equal jobs (same structural key) occupy one slot
        // no matter which user submitted them.
        let per_request: Vec<Vec<BatchJob>> = batch.iter().map(|t| t.plan.batch_jobs()).collect();
        let mut interner = JobInterner::new();
        let mut table: Vec<BatchJob> = Vec::new();
        let request_slots: Vec<Vec<usize>> = per_request
            .iter()
            .map(|jobs| {
                jobs.iter()
                    .map(|job| interner.intern_with(&mut table, job.clone(), |job| job).0)
                    .collect()
            })
            .collect();
        self.distinct_jobs
            .fetch_add(table.len() as u64, Ordering::Relaxed);

        // Cache lookups per distinct job; the remainder executes as ONE
        // batch so the trie scheduler merges shared prefixes across
        // requests.
        let mut results: Vec<Option<RunOutput>> = vec![None; table.len()];
        let mut miss_slots: Vec<usize> = Vec::new();
        for (slot, job) in table.iter().enumerate() {
            if let Some(cache) = &self.cache {
                if let Some(out) = cache.get(job.dedup_key()) {
                    results[slot] = Some(out);
                    continue;
                }
            }
            miss_slots.push(slot);
        }
        self.cache_hit_jobs
            .fetch_add((table.len() - miss_slots.len()) as u64, Ordering::Relaxed);
        self.executed_jobs
            .fetch_add(miss_slots.len() as u64, Ordering::Relaxed);

        if !miss_slots.is_empty() {
            let miss_jobs: Vec<BatchJob> =
                miss_slots.iter().map(|&slot| table[slot].clone()).collect();
            self.batch_trie
                .lock()
                .unwrap()
                .absorb(&batch_trie_stats(&miss_jobs));
            let fresh = self.runner.run_batch(&miss_jobs);
            // A runner violating the run_batch contract fails the whole
            // drained batch below (every request sees a scatter mismatch)
            // instead of panicking the batcher thread.
            if fresh.len() == miss_jobs.len() {
                for (&slot, out) in miss_slots.iter().zip(fresh) {
                    if let Some(cache) = &self.cache {
                        let weight = run_output_weight(&out);
                        cache.insert(table[slot].dedup_key(), out.clone(), weight);
                    }
                    results[slot] = Some(out);
                }
            }
        }

        // Scatter back per request and recombine each plan independently.
        let mut jobs = self.jobs.lock().unwrap();
        for ((ticket, slots), own_jobs) in batch.iter().zip(&request_slots).zip(&per_request) {
            let outputs: Option<Vec<RunOutput>> =
                slots.iter().map(|&slot| results[slot].clone()).collect();
            let outcome = match outputs {
                Some(outputs) => {
                    let engine_mix = self.runner.engine_mix(own_jobs);
                    ticket
                        .plan
                        .artifacts_from_outputs(outputs, engine_mix)
                        .and_then(|artifacts| artifacts.recombine())
                        .map_err(ServiceError::Exec)
                }
                None => Err(ServiceError::Exec(
                    qt_core::ExecError::ResultCountMismatch {
                        expected: slots.len(),
                        got: 0,
                    },
                )),
            };
            let state = match outcome {
                Ok(report) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    JobState::Done(Arc::new(report))
                }
                Err(e) => {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    JobState::Failed(e)
                }
            };
            jobs.insert(ticket.id, state);
        }
        drop(jobs);
        self.done_cv.notify_all();
    }
}
