//! The service engine: admission, the cross-request batcher, the shared
//! result cache and the job registry. HTTP is a thin shell over this
//! module (see [`crate::server`]); tests can drive the engine directly.
//!
//! # Data flow
//!
//! ```text
//! submit ──plan──▶ bounded queue ──drain (size-or-deadline)──▶ batcher
//!                                                               │
//!                       ┌───────────────────────────────────────┘
//!                       ▼
//!          dedup all requests' jobs (JobInterner)
//!                       │ per distinct job
//!            cache hit ◀┴▶ miss ──▶ ONE run_batch over all misses
//!                       │            (trie merges shared prefixes
//!                       │             across unrelated requests)
//!                       ▼
//!      scatter per request ─▶ artifacts_from_outputs ─▶ recombine
//! ```
//!
//! Every served report is bit-identical to a one-shot
//! `run_qutracer` call with the same runner: plan-order jobs, trie
//! execution and cache hits are all exact — the end-to-end tests assert
//! this with `f64::to_bits` equality through the wire format.
//!
//! # Failure domain
//!
//! Execution runs through [`qt_sim::try_run_batch_resilient`]: panics are
//! caught and quarantined to the offending job by batch bisection,
//! transient errors are retried within [`ServiceConfig::retry`], and a job
//! that still fails voids only the requests depending on it — cohabiting
//! healthy requests keep their bit-identical reports. Per-request
//! deadlines ([`ServiceConfig::request_deadline`]) turn overdue jobs into
//! typed 504s, and [`MitigationService::shutdown`] drains in-flight work
//! while failing queued work with [`ServiceError::ShuttingDown`] — every
//! submitted job terminates with a report or a typed error, never a hang.

use crate::error::ServiceError;
use crate::queue::{BoundedQueue, PushError};
use qt_circuit::Circuit;
use qt_core::{
    ExecError, MitigationPlan, MitigationSession, PlanView, QuTracer, QuTracerConfig,
    QuTracerReport, ShotPolicy,
};
use qt_sim::cache::{run_output_weight, CacheStats, ShardedLruCache};
use qt_sim::{
    batch_trie_stats, try_run_batch_resilient, wait_timeout_recover, BatchJob, FailureStats,
    JobInterner, LockRecoverExt, RetryPolicy, RunError, RunOutput, Runner, TrieStats,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one service instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Admission bound: requests pending beyond this are rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Drain size trigger: a batch closes as soon as this many requests
    /// are pending.
    pub batch_max_requests: usize,
    /// Drain deadline trigger: a batch closes at most this long after its
    /// first request arrives, full or not.
    pub batch_deadline: Duration,
    /// Byte budget of the shared result cache; `0` disables caching.
    pub cache_bytes: usize,
    /// Shard count of the result cache (rounded up to a power of two).
    pub cache_shards: usize,
    /// Retry budget for transient job failures during batch execution
    /// (see [`qt_sim::try_run_batch_resilient`]). Retried work is
    /// bit-identical to first-attempt success, so retries never change a
    /// served report — only whether one is served.
    pub retry: RetryPolicy,
    /// Server-side wall-clock budget per request, measured from
    /// admission. A job still undelivered when it expires fails with
    /// [`ServiceError::DeadlineExceeded`] (HTTP 504) and its pending work
    /// is discarded; `None` disables deadlines.
    pub request_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            batch_max_requests: 8,
            batch_deadline: Duration::from_millis(2),
            cache_bytes: 32 << 20,
            cache_shards: 8,
            retry: RetryPolicy::default(),
            request_deadline: None,
        }
    }
}

impl ServiceConfig {
    /// A configuration with batching and caching effectively disabled —
    /// every request executes alone (the load generator's per-request
    /// baseline arm).
    pub fn per_request(self) -> Self {
        ServiceConfig {
            batch_max_requests: 1,
            cache_bytes: 0,
            ..self
        }
    }
}

/// Where a submitted job currently is.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Planned and admitted, waiting for a batch.
    Queued(PlanView),
    /// Part of the batch currently executing.
    Running(PlanView),
    /// Finished; the report is ready.
    Done(Arc<QuTracerReport>),
    /// Execution or recombination failed.
    Failed(ServiceError),
}

impl JobState {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued(_) => "queued",
            JobState::Running(_) => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

impl JobState {
    /// `true` once the job can no longer change state.
    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// A job-registry entry: where the job is plus its server-side deadline.
struct JobEntry {
    state: JobState,
    /// Instant past which the job fails with
    /// [`ServiceError::DeadlineExceeded`]; `None` when deadlines are off.
    deadline: Option<Instant>,
}

/// One admitted request travelling from `submit` to the batcher. The
/// job's deadline lives in its [`JobEntry`]; the batcher observes it
/// through [`MitigationService::expire_if_overdue`] at pick-up/delivery.
struct Ticket {
    id: u64,
    work: Work,
}

/// What a ticket carries through the batcher.
enum Work {
    /// An exact single-pass request (the original `submit` surface).
    Exact(Box<MitigationPlan>),
    /// A finite-shot mitigation session: each pending round re-enters the
    /// queue, executes through the same cross-request batcher and cache as
    /// exact work, and the session samples counts from the exact outputs
    /// ([`MitigationSession::absorb_exact`]) — bit-identical to running
    /// the session offline against the same runner.
    Session(Box<MitigationSession<MitigationPlan>>),
}

impl Work {
    /// The request's batch jobs, in the order its recombination expects
    /// results back.
    fn batch_jobs(&self) -> Vec<BatchJob> {
        match self {
            Work::Exact(plan) => plan.batch_jobs(),
            Work::Session(session) => session.jobs().to_vec(),
        }
    }

    fn view(&self) -> PlanView {
        match self {
            Work::Exact(plan) => plan.view(),
            Work::Session(session) => session.strategy().view(),
        }
    }
}

/// A point-in-time snapshot of the service's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests admitted (planned and queued).
    pub submitted: u64,
    /// Requests rejected at admission ([`ServiceError::Overloaded`]).
    pub rejected: u64,
    /// Requests finished with a report.
    pub completed: u64,
    /// Requests finished with an error.
    pub failed: u64,
    /// Requests currently pending in the queue.
    pub queue_depth: usize,
    /// Batches drained so far.
    pub batches: u64,
    /// Requests across all drained batches (`batched_requests / batches`
    /// is the achieved batch size).
    pub batched_requests: u64,
    /// Distinct jobs after cross-request dedup, across all batches.
    pub distinct_jobs: u64,
    /// Distinct jobs served from the result cache.
    pub cache_hit_jobs: u64,
    /// Distinct jobs actually executed.
    pub executed_jobs: u64,
    /// Result-cache counters (zeroes when the cache is disabled).
    pub cache: CacheStats,
    /// Accumulated prefix-sharing statistics of the executed (miss)
    /// batches — how much gate work cross-request merging shared.
    pub batch_trie: TrieStats,
    /// Accumulated failure-domain activity of the resilient execution
    /// path: retries spent, jobs recovered or failed, quarantined panics
    /// and corrupt outputs (see [`FailureStats`]).
    pub run_failures: FailureStats,
    /// Requests failed with [`ServiceError::DeadlineExceeded`].
    pub deadline_expired: u64,
}

/// The long-running mitigation engine behind the HTTP front-end.
pub struct MitigationService<R> {
    runner: R,
    config: ServiceConfig,
    queue: BoundedQueue<Ticket>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Signalled whenever a job reaches a terminal state.
    done_cv: Condvar,
    next_id: AtomicU64,
    cache: Option<ShardedLruCache<RunOutput>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    distinct_jobs: AtomicU64,
    cache_hit_jobs: AtomicU64,
    executed_jobs: AtomicU64,
    batch_trie: Mutex<TrieStats>,
    run_failures: Mutex<FailureStats>,
    deadline_expired: AtomicU64,
}

impl<R: Runner + Send + Sync + 'static> MitigationService<R> {
    /// A service executing on `runner` under `config`. The batcher thread
    /// is *not* started — call [`MitigationService::spawn_batcher`] (or
    /// drive [`MitigationService::process_next_batch`] manually in tests).
    pub fn new(runner: R, config: ServiceConfig) -> Arc<Self> {
        let cache = (config.cache_bytes > 0)
            .then(|| ShardedLruCache::new(config.cache_bytes, config.cache_shards));
        Arc::new(MitigationService {
            runner,
            config,
            queue: BoundedQueue::new(config.queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            cache,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            distinct_jobs: AtomicU64::new(0),
            cache_hit_jobs: AtomicU64::new(0),
            executed_jobs: AtomicU64::new(0),
            batch_trie: Mutex::new(TrieStats::default()),
            run_failures: Mutex::new(FailureStats::default()),
            deadline_expired: AtomicU64::new(0),
        })
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Starts the batcher thread draining the queue until
    /// [`MitigationService::shutdown`]. Join the handle to wait for a
    /// clean drain.
    pub fn spawn_batcher(self: &Arc<Self>) -> JoinHandle<()> {
        let service = Arc::clone(self);
        std::thread::spawn(move || while service.process_next_batch() {})
    }

    /// Plans `circuit` and admits the job, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Plan`] when planning fails,
    /// [`ServiceError::Overloaded`] when the queue is full,
    /// [`ServiceError::ShuttingDown`] after [`MitigationService::shutdown`].
    pub fn submit(
        &self,
        circuit: &Circuit,
        measured: &[usize],
        config: &QuTracerConfig,
    ) -> Result<u64, ServiceError> {
        let plan = QuTracer::plan(circuit, measured, config).map_err(ServiceError::Plan)?;
        self.admit(Work::Exact(Box::new(plan)))
    }

    /// Plans `circuit` and admits it as a finite-shot mitigation session
    /// under `policy` with `total_shots` and sampling seed `seed`. Each
    /// round of the session (two for a genuinely adaptive policy) runs
    /// through the shared batcher and result cache; the served report is
    /// bit-identical to [`MitigationPlan::run_sampled`] offline against
    /// the same runner.
    ///
    /// # Errors
    ///
    /// As [`MitigationService::submit`], plus
    /// [`ServiceError::Exec`] wrapping
    /// [`ExecError::InsufficientShotBudget`] /
    /// [`ExecError::InvalidPilotFraction`] for an unfundable budget or a
    /// malformed adaptive policy.
    pub fn submit_sampled(
        &self,
        circuit: &Circuit,
        measured: &[usize],
        config: &QuTracerConfig,
        total_shots: usize,
        policy: ShotPolicy,
        seed: u64,
    ) -> Result<u64, ServiceError> {
        let plan = QuTracer::plan(circuit, measured, config).map_err(ServiceError::Plan)?;
        let session =
            MitigationSession::new(plan, policy, total_shots, seed).map_err(ServiceError::Exec)?;
        self.admit(Work::Session(Box::new(session)))
    }

    fn admit(&self, work: Work) -> Result<u64, ServiceError> {
        let view = work.view();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = self.config.request_deadline.map(|d| Instant::now() + d);
        self.jobs.lock_recover().insert(
            id,
            JobEntry {
                state: JobState::Queued(view),
                deadline,
            },
        );
        match self.queue.try_push(Ticket { id, work }) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(id)
            }
            Err(e) => {
                self.jobs.lock_recover().remove(&id);
                match e {
                    PushError::Full => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        Err(ServiceError::Overloaded {
                            capacity: self.queue.capacity(),
                        })
                    }
                    PushError::Closed => Err(ServiceError::ShuttingDown),
                }
            }
        }
    }

    /// Fails `entry` with [`ServiceError::DeadlineExceeded`] if its
    /// server-side deadline has passed and it is still non-terminal.
    /// Expiry is observed lazily — at every registry access and at the
    /// batcher's pick-up and delivery points — so an expired job turns
    /// into a typed 504 wherever it is next touched.
    fn expire_if_overdue(&self, id: u64, entry: &mut JobEntry) {
        let overdue =
            !entry.state.is_terminal() && entry.deadline.is_some_and(|d| Instant::now() >= d);
        if overdue {
            entry.state = JobState::Failed(ServiceError::DeadlineExceeded {
                job: id,
                deadline_millis: self
                    .config
                    .request_deadline
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            });
            self.failed.fetch_add(1, Ordering::Relaxed);
            self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current state of job `id`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotFound`] for unknown ids.
    pub fn status(&self, id: u64) -> Result<JobState, ServiceError> {
        let mut jobs = self.jobs.lock_recover();
        let entry = jobs
            .get_mut(&id)
            .ok_or(ServiceError::NotFound { job: id })?;
        self.expire_if_overdue(id, entry);
        Ok(entry.state.clone())
    }

    /// The finished report for job `id`, `None` while it is still in
    /// flight.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotFound`] for unknown ids; the job's own error if
    /// it failed.
    pub fn result(&self, id: u64) -> Result<Option<Arc<QuTracerReport>>, ServiceError> {
        match self.status(id)? {
            JobState::Done(report) => Ok(Some(report)),
            JobState::Failed(e) => Err(e),
            _ => Ok(None),
        }
    }

    /// Blocks until job `id` reaches a terminal state, up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotFound`] for unknown ids *and* for timeouts (the
    /// job is still unfinished — callers distinguish via
    /// [`MitigationService::status`]); the job's own error if it failed.
    pub fn wait_result(
        &self,
        id: u64,
        timeout: Duration,
    ) -> Result<Arc<QuTracerReport>, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.jobs.lock_recover();
        loop {
            let Some(entry) = jobs.get_mut(&id) else {
                return Err(ServiceError::NotFound { job: id });
            };
            self.expire_if_overdue(id, entry);
            match &entry.state {
                JobState::Done(report) => return Ok(Arc::clone(report)),
                JobState::Failed(e) => return Err(e.clone()),
                _ => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServiceError::NotFound { job: id });
                    }
                    let mut wait = deadline - now;
                    if let Some(d) = entry.deadline {
                        // Wake when the job's own server-side deadline
                        // lands, so expiry is observed even if nothing is
                        // ever delivered. The floor avoids a hot loop when
                        // the deadline falls between two clock reads.
                        let until_expiry = d
                            .saturating_duration_since(now)
                            .max(Duration::from_micros(50));
                        wait = wait.min(until_expiry);
                    }
                    let (next, _) = wait_timeout_recover(&self.done_cv, jobs, wait);
                    jobs = next;
                }
            }
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            distinct_jobs: self.distinct_jobs.load(Ordering::Relaxed),
            cache_hit_jobs: self.cache_hit_jobs.load(Ordering::Relaxed),
            executed_jobs: self.executed_jobs.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            batch_trie: *self.batch_trie.lock_recover(),
            run_failures: *self.run_failures.lock_recover(),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
        }
    }

    /// Result-cache counters (the satellite `cache_stats()` surface;
    /// all-zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// `true` while the service accepts new submissions — the readiness
    /// probe behind `GET /ready`. Liveness (`GET /health`) is simply the
    /// process answering.
    pub fn is_accepting(&self) -> bool {
        !self.queue.is_closed()
    }

    /// Drain-shutdown: stops admission, fails everything still *queued*
    /// with a typed [`ServiceError::ShuttingDown`], and lets work already
    /// picked up by the batcher finish normally. Waiters are woken, so
    /// [`MitigationService::wait_result`] never hangs across a shutdown —
    /// every job resolves to its report or a typed error.
    pub fn shutdown(&self) {
        let orphans = self.queue.close_and_take();
        if !orphans.is_empty() {
            let mut jobs = self.jobs.lock_recover();
            for ticket in &orphans {
                if let Some(entry) = jobs.get_mut(&ticket.id) {
                    if !entry.state.is_terminal() {
                        entry.state = JobState::Failed(ServiceError::ShuttingDown);
                        self.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.done_cv.notify_all();
    }

    /// Drains and processes one batch. Returns `false` once the queue is
    /// closed and empty — the batcher's exit condition.
    pub fn process_next_batch(&self) -> bool {
        let Some(batch) = self
            .queue
            .drain(self.config.batch_max_requests, self.config.batch_deadline)
        else {
            return false;
        };
        self.process_batch(batch);
        true
    }

    /// Executes one drained batch: cross-request dedup, cache lookups,
    /// one merged *resilient* run over the misses (panic quarantine by
    /// bisection, bounded retry of transients — see
    /// [`qt_sim::try_run_batch_resilient`]), then per-request scatter and
    /// recombination. A job failure voids only the requests that depend
    /// on that job: healthy cohabitants of the same batch still get
    /// reports bit-identical to a fault-free run.
    fn process_batch(&self, batch: Vec<Ticket>) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Pick-up: requests already past their deadline fail right here
        // (typed 504, no execution spent); the rest are marked Running.
        let mut live: Vec<Ticket> = Vec::with_capacity(batch.len());
        {
            let mut jobs = self.jobs.lock_recover();
            for ticket in batch {
                let Some(entry) = jobs.get_mut(&ticket.id) else {
                    continue;
                };
                self.expire_if_overdue(ticket.id, entry);
                if entry.state.is_terminal() {
                    continue;
                }
                if let JobState::Queued(view) = &entry.state {
                    entry.state = JobState::Running(view.clone());
                }
                live.push(ticket);
            }
        }
        if live.is_empty() {
            self.done_cv.notify_all();
            return;
        }

        // Cross-request dedup: every request's plan-order jobs land in one
        // shared table; equal jobs (same structural key) occupy one slot
        // no matter which user submitted them.
        let per_request: Vec<Vec<BatchJob>> = live.iter().map(|t| t.work.batch_jobs()).collect();
        let mut interner = JobInterner::new();
        let mut table: Vec<BatchJob> = Vec::new();
        let request_slots: Vec<Vec<usize>> = per_request
            .iter()
            .map(|jobs| {
                jobs.iter()
                    .map(|job| interner.intern_with(&mut table, job.clone(), |job| job).0)
                    .collect()
            })
            .collect();
        self.distinct_jobs
            .fetch_add(table.len() as u64, Ordering::Relaxed);

        // Cache lookups per distinct job; the remainder executes as ONE
        // batch so the trie scheduler merges shared prefixes across
        // requests. Results are per-slot `Result`s: a failed job poisons
        // only the requests whose plans reference its slot.
        let mut results: Vec<Option<Result<RunOutput, RunError>>> = vec![None; table.len()];
        let mut miss_slots: Vec<usize> = Vec::new();
        for (slot, job) in table.iter().enumerate() {
            if let Some(cache) = &self.cache {
                if let Some(out) = cache.get(job.dedup_key()) {
                    results[slot] = Some(Ok(out));
                    continue;
                }
            }
            miss_slots.push(slot);
        }
        self.cache_hit_jobs
            .fetch_add((table.len() - miss_slots.len()) as u64, Ordering::Relaxed);
        self.executed_jobs
            .fetch_add(miss_slots.len() as u64, Ordering::Relaxed);

        if !miss_slots.is_empty() {
            let miss_jobs: Vec<BatchJob> =
                miss_slots.iter().map(|&slot| table[slot].clone()).collect();
            self.batch_trie
                .lock_recover()
                .absorb(&batch_trie_stats(&miss_jobs));
            // The resilient path isolates panics (batch bisection), turns
            // contract violations and corrupt shapes into typed errors and
            // retries transients within the configured budget — it always
            // returns exactly one Result per job and never unwinds into
            // the batcher thread.
            let (fresh, fail_stats) =
                try_run_batch_resilient(&self.runner, &miss_jobs, &self.config.retry);
            self.run_failures.lock_recover().merge(&fail_stats);
            for (&slot, res) in miss_slots.iter().zip(fresh) {
                if let (Some(cache), Ok(out)) = (&self.cache, &res) {
                    cache.insert(table[slot].dedup_key(), out.clone(), run_output_weight(out));
                }
                results[slot] = Some(res);
            }
        }

        // Scatter back per request and recombine each plan independently.
        // A session with rounds left is collected for requeueing instead
        // of resolving; everything else reaches a terminal state here.
        let mut requeues: Vec<Ticket> = Vec::new();
        let mut jobs = self.jobs.lock_recover();
        for ((ticket, slots), own_jobs) in live.into_iter().zip(&request_slots).zip(&per_request) {
            let id = ticket.id;
            let Some(entry) = jobs.get_mut(&id) else {
                continue;
            };
            // Delivery-point deadline check: a report that missed its
            // deadline is discarded, not delivered late.
            self.expire_if_overdue(id, entry);
            if entry.state.is_terminal() {
                continue;
            }
            let gathered: Result<Vec<RunOutput>, ServiceError> = slots
                .iter()
                .enumerate()
                .map(|(local, &slot)| match &results[slot] {
                    Some(Ok(out)) => Ok(out.clone()),
                    Some(Err(error)) => Err(ServiceError::Exec(ExecError::JobFailed {
                        slot: local,
                        error: error.clone(),
                    })),
                    None => Err(ServiceError::Exec(ExecError::ResultCountMismatch {
                        expected: slots.len(),
                        got: 0,
                    })),
                })
                .collect();
            match ticket.work {
                Work::Exact(plan) => {
                    let outcome = gathered.and_then(|outputs| {
                        let engine_mix = self.runner.engine_mix(own_jobs);
                        plan.artifacts_from_outputs(outputs, engine_mix)
                            .and_then(|artifacts| artifacts.recombine())
                            .map_err(ServiceError::Exec)
                    });
                    entry.state = match outcome {
                        Ok(report) => {
                            self.completed.fetch_add(1, Ordering::Relaxed);
                            JobState::Done(Arc::new(report))
                        }
                        Err(e) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            JobState::Failed(e)
                        }
                    };
                }
                Work::Session(mut session) => {
                    let absorbed = gathered.and_then(|outputs| {
                        if session.rounds_completed() == 0 {
                            session.set_engine_mix(self.runner.engine_mix(own_jobs));
                        }
                        let spec = session
                            .next_round()
                            .expect("an admitted session ticket has a pending round");
                        session
                            .absorb_exact(&spec, &outputs)
                            .map_err(ServiceError::Exec)
                    });
                    match absorbed {
                        Err(e) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            entry.state = JobState::Failed(e);
                        }
                        Ok(()) if session.next_round().is_some() => {
                            // Still Running: the next round re-enters the
                            // queue below, outside the registry lock. An
                            // adaptive final round resubmits the same jobs,
                            // so it is served from the result cache.
                            requeues.push(Ticket {
                                id,
                                work: Work::Session(session),
                            });
                        }
                        Ok(()) => {
                            entry.state = match session.finish().map_err(ServiceError::Exec) {
                                Ok(report) => {
                                    self.completed.fetch_add(1, Ordering::Relaxed);
                                    JobState::Done(Arc::new(report))
                                }
                                Err(e) => {
                                    self.failed.fetch_add(1, Ordering::Relaxed);
                                    JobState::Failed(e)
                                }
                            };
                        }
                    }
                }
            }
        }
        drop(jobs);
        self.done_cv.notify_all();
        // Pending session rounds go back through admission (bypassing the
        // capacity bound — they are not new load). A closed queue means a
        // drain-shutdown landed mid-session: resolve the job typed so no
        // waiter hangs.
        for ticket in requeues {
            let id = ticket.id;
            if self.queue.requeue(ticket).is_err() {
                let mut jobs = self.jobs.lock_recover();
                if let Some(entry) = jobs.get_mut(&id) {
                    if !entry.state.is_terminal() {
                        entry.state = JobState::Failed(ServiceError::ShuttingDown);
                        self.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(jobs);
                self.done_cv.notify_all();
            }
        }
    }
}
