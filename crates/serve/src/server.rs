//! The TCP/HTTP front-end over [`MitigationService`].
//!
//! Endpoints (one request per connection, `Connection: close`):
//!
//! | method & path      | body                                   | replies |
//! |--------------------|----------------------------------------|---------|
//! | `POST /submit`     | `{circuit, measured, config?}`         | `202 {"job_id":N}`, `429` overloaded, `422` plan error |
//! | `GET /status/<id>` | —                                      | `200 {"job_id","state",...}`, `404` |
//! | `GET /result/<id>` | —                                      | `200` report, `202` pending, `404`, `500` failed, `504` deadline |
//! | `GET /stats`       | —                                      | `200` service counters |
//! | `GET /health`      | —                                      | `200` liveness (the process answers) |
//! | `GET /ready`       | —                                      | `200` accepting, `503` draining |
//!
//! Every error body is `{"error": kind, "message": text}` (see
//! [`ServiceError`]).

use crate::error::ServiceError;
use crate::http::{read_message, write_response, Message};
use crate::json::{obj, Json};
use crate::service::{JobState, MitigationService, ServiceConfig};
use crate::wire;
use qt_sim::Runner;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: accept loop + batcher, shut down via
/// [`ServerHandle::shutdown`].
pub struct ServerHandle<R> {
    addr: SocketAddr,
    service: Arc<MitigationService<R>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl<R: Runner + Send + Sync + 'static> ServerHandle<R> {
    /// The bound address (use `"127.0.0.1:0"` at bind time for an
    /// ephemeral port and read it back here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the front-end (stats, direct submission).
    pub fn service(&self) -> &Arc<MitigationService<R>> {
        &self.service
    }

    /// Stops accepting, drains the queue and joins both threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.service.shutdown();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr`, starts the batcher and the accept loop, and returns
/// immediately.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<R: Runner + Send + Sync + 'static>(
    addr: &str,
    runner: R,
    config: ServiceConfig,
) -> io::Result<ServerHandle<R>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let service = MitigationService::new(runner, config);
    let batcher = service.spawn_batcher();
    let stop = Arc::new(AtomicBool::new(false));

    let accept = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                // One short-lived thread per connection: each handles a
                // single request and closes. The bounded queue, not the
                // thread count, is the admission mechanism.
                std::thread::spawn(move || handle_connection(stream, &service));
            }
        })
    };

    Ok(ServerHandle {
        addr,
        service,
        stop,
        accept: Some(accept),
        batcher: Some(batcher),
    })
}

fn handle_connection<R: Runner + Send + Sync + 'static>(
    mut stream: TcpStream,
    service: &MitigationService<R>,
) {
    let msg = match read_message(&mut stream) {
        Ok(msg) => msg,
        Err(_) => {
            let err = ServiceError::BadRequest("unreadable HTTP request".into());
            let _ = write_response(&mut stream, err.status_code(), &err.to_json().to_string());
            return;
        }
    };
    let (status, body) = route(&msg, service);
    let _ = write_response(&mut stream, status, &body.to_string());
}

fn route<R: Runner + Send + Sync + 'static>(
    msg: &Message,
    service: &MitigationService<R>,
) -> (u16, Json) {
    match (msg.method.as_str(), msg.path.as_str()) {
        ("POST", "/submit") => reply(handle_submit(msg, service)),
        ("GET", "/stats") => (200, service_stats_json(service)),
        // Liveness: answering at all is the signal.
        ("GET", "/health") => (200, obj([("status", Json::Str("ok".into()))])),
        // Readiness: admission must actually be open.
        ("GET", "/ready") => {
            if service.is_accepting() {
                (200, obj([("status", Json::Str("ready".into()))]))
            } else {
                (503, obj([("status", Json::Str("draining".into()))]))
            }
        }
        ("GET", path) => {
            if let Some(id) = parse_id(path, "/status/") {
                reply(handle_status(id, service))
            } else if let Some(id) = parse_id(path, "/result/") {
                handle_result(id, service)
            } else {
                let err = ServiceError::NotFound { job: 0 };
                (404, err.to_json())
            }
        }
        _ => (
            405,
            obj([
                ("error", Json::Str("method_not_allowed".into())),
                (
                    "message",
                    Json::Str(format!("{} {} is not an endpoint", msg.method, msg.path)),
                ),
            ]),
        ),
    }
}

fn reply(result: Result<(u16, Json), ServiceError>) -> (u16, Json) {
    match result {
        Ok(ok) => ok,
        Err(e) => (e.status_code(), e.to_json()),
    }
}

fn parse_id(path: &str, prefix: &str) -> Option<u64> {
    path.strip_prefix(prefix)?.parse::<u64>().ok()
}

fn handle_submit<R: Runner + Send + Sync + 'static>(
    msg: &Message,
    service: &MitigationService<R>,
) -> Result<(u16, Json), ServiceError> {
    let doc = Json::parse(&msg.body)
        .map_err(|e| ServiceError::BadRequest(format!("invalid JSON: {e}")))?;
    let circuit = wire::circuit_from_json(
        doc.field("circuit", "submit")
            .map_err(ServiceError::BadRequest)?,
    )
    .map_err(ServiceError::BadRequest)?;
    let measured = doc
        .field("measured", "submit")
        .map_err(ServiceError::BadRequest)?
        .as_arr("submit.measured")
        .map_err(ServiceError::BadRequest)?
        .iter()
        .map(|x| x.as_usize("submit.measured"))
        .collect::<Result<Vec<_>, _>>()
        .map_err(ServiceError::BadRequest)?;
    let config = match doc
        .opt_field("config", "submit")
        .map_err(ServiceError::BadRequest)?
    {
        Some(c) => wire::config_from_json(c).map_err(ServiceError::BadRequest)?,
        None => Default::default(),
    };
    // An optional `sampling` envelope turns the request into a finite-shot
    // mitigation session: {"total_shots":"40000", "policy":{...}, "seed":"7"}.
    // Policy defaults to uniform, seed to 0; total_shots is required.
    let id = match doc
        .opt_field("sampling", "submit")
        .map_err(ServiceError::BadRequest)?
    {
        None => service.submit(&circuit, &measured, &config)?,
        Some(s) => {
            let total_shots = s
                .field("total_shots", "submit.sampling")
                .and_then(|v| v.as_u64_str("sampling.total_shots"))
                .map_err(ServiceError::BadRequest)? as usize;
            let policy = match s
                .opt_field("policy", "submit.sampling")
                .map_err(ServiceError::BadRequest)?
            {
                Some(p) => wire::shot_policy_from_json(p).map_err(ServiceError::BadRequest)?,
                None => qt_core::ShotPolicy::Uniform,
            };
            let seed = s
                .opt_field("seed", "submit.sampling")
                .map_err(ServiceError::BadRequest)?
                .map(|v| v.as_u64_str("sampling.seed"))
                .transpose()
                .map_err(ServiceError::BadRequest)?
                .unwrap_or(0);
            service.submit_sampled(&circuit, &measured, &config, total_shots, policy, seed)?
        }
    };
    Ok((202, obj([("job_id", Json::Num(id as f64))])))
}

fn handle_status<R: Runner + Send + Sync + 'static>(
    id: u64,
    service: &MitigationService<R>,
) -> Result<(u16, Json), ServiceError> {
    let state = service.status(id)?;
    let mut fields = vec![
        ("job_id", Json::Num(id as f64)),
        ("state", Json::Str(state.name().into())),
    ];
    match &state {
        JobState::Queued(view) | JobState::Running(view) => {
            fields.push(("plan", wire::plan_view_to_json(view)));
        }
        JobState::Failed(e) => fields.push(("failure", e.to_json())),
        JobState::Done(_) => {}
    }
    Ok((200, obj(fields)))
}

fn handle_result<R: Runner + Send + Sync + 'static>(
    id: u64,
    service: &MitigationService<R>,
) -> (u16, Json) {
    match service.result(id) {
        Ok(Some(report)) => (200, wire::report_to_json(&report)),
        Ok(None) => (
            202,
            obj([
                ("job_id", Json::Num(id as f64)),
                ("state", Json::Str("pending".into())),
            ]),
        ),
        Err(e) => (e.status_code(), e.to_json()),
    }
}

fn service_stats_json<R: Runner + Send + Sync + 'static>(service: &MitigationService<R>) -> Json {
    let s = service.stats();
    obj([
        ("submitted", Json::Num(s.submitted as f64)),
        ("rejected", Json::Num(s.rejected as f64)),
        ("completed", Json::Num(s.completed as f64)),
        ("failed", Json::Num(s.failed as f64)),
        ("queue_depth", Json::Num(s.queue_depth as f64)),
        ("batches", Json::Num(s.batches as f64)),
        ("batched_requests", Json::Num(s.batched_requests as f64)),
        ("distinct_jobs", Json::Num(s.distinct_jobs as f64)),
        ("cache_hit_jobs", Json::Num(s.cache_hit_jobs as f64)),
        ("executed_jobs", Json::Num(s.executed_jobs as f64)),
        (
            "cache",
            obj([
                ("hits", Json::Num(s.cache.hits as f64)),
                ("misses", Json::Num(s.cache.misses as f64)),
                ("evictions", Json::Num(s.cache.evictions as f64)),
                ("insertions", Json::Num(s.cache.insertions as f64)),
                ("hit_rate", Json::Num(s.cache.hit_rate())),
            ]),
        ),
        ("batch_trie", wire::trie_stats_to_json(&s.batch_trie)),
        (
            "run_failures",
            obj([
                ("retries", Json::Num(s.run_failures.retries as f64)),
                (
                    "retried_jobs",
                    Json::Num(s.run_failures.retried_jobs as f64),
                ),
                ("failed_jobs", Json::Num(s.run_failures.failed_jobs as f64)),
                (
                    "isolated_panics",
                    Json::Num(s.run_failures.isolated_panics as f64),
                ),
                (
                    "corrupt_outputs",
                    Json::Num(s.run_failures.corrupt_outputs as f64),
                ),
            ]),
        ),
        ("deadline_expired", Json::Num(s.deadline_expired as f64)),
    ])
}
