//! Mitigation-as-a-service: a persistent TCP/HTTP 1.1 front-end over the
//! staged QuTracer pipeline (`plan → execute → recombine`), with
//! concurrent result caching and **cross-request trie batching** —
//! requests from unrelated clients are drained into one execution batch,
//! deduplicated by structural [`qt_sim::JobKey`], and their shared
//! circuit prefixes merge into a single state evolution.
//!
//! Entirely `std`: the HTTP subset ([`http`]) and the JSON codec
//! ([`json`]) are dependency-free in the same vendored-shim spirit as
//! `crates/{rand,proptest,criterion}`, so the crate builds offline.
//!
//! # Layers
//!
//! * [`json`] / [`wire`] — the codec and the typed wire forms (exact
//!   float round-trips; `u64` outcomes as decimal strings);
//! * [`queue`] — bounded admission with non-blocking rejection and the
//!   size-or-deadline drain trigger;
//! * [`service`] — the engine: job registry, sharded LRU result cache
//!   (from [`qt_sim::cache`]), cross-request dedup + merged execution;
//! * [`server`] / [`client`] — the HTTP shell and a blocking client;
//! * [`error`] — [`ServiceError`] with HTTP status mapping.
//!
//! # Example
//!
//! ```
//! use qt_serve::{serve, ServiceClient, ServiceConfig};
//! use qt_sim::{Backend, Executor, NoiseModel};
//! use qt_core::QuTracerConfig;
//! use qt_circuit::Circuit;
//!
//! let runner = Executor::with_backend(
//!     NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
//!     Backend::DensityMatrix,
//! );
//! let server = serve("127.0.0.1:0", runner, ServiceConfig::default()).unwrap();
//! let client = ServiceClient::new(server.addr());
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let job = client.submit(&c, &[0, 1], &QuTracerConfig::single()).unwrap();
//! let report = client
//!     .wait_result(job, std::time::Duration::from_secs(60))
//!     .unwrap();
//! assert!((report.distribution.total() - 1.0).abs() < 1e-9);
//! server.shutdown();
//! ```

pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{ClientError, ServiceClient};
pub use error::ServiceError;
pub use json::{Json, JsonError};
pub use queue::{BoundedQueue, PushError};
pub use server::{serve, ServerHandle};
pub use service::{JobState, MitigationService, ServiceConfig, ServiceStats};
