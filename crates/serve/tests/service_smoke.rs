//! End-to-end smoke tests: a real server on an ephemeral port, real TCP
//! clients, and bit-for-bit comparison of every served report against an
//! in-process `run_qutracer` call with the same runner. Also drives the
//! engine directly (no batcher thread) to pin down admission control:
//! a full queue is a typed `Overloaded` rejection, never a hang.

use qt_algos::{qaoa_maxcut, ring_graph, QaoaParams};
use qt_circuit::Circuit;
use qt_core::{run_qutracer, QuTracer, QuTracerConfig, QuTracerReport, ShotPolicy};
use qt_dist::Distribution;
use qt_serve::{serve, JobState, MitigationService, ServiceClient, ServiceConfig, ServiceError};
use qt_sim::{Backend, ChaosConfig, ChaosRunner, Executor, NoiseModel};
use std::time::{Duration, Instant};

fn runner() -> Executor {
    Executor::with_backend(
        NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
        Backend::DensityMatrix,
    )
}

fn assert_dist_identical(a: &Distribution, b: &Distribution, what: &str) {
    let xs: Vec<(u64, u64)> = a.iter().map(|(i, p)| (i, p.to_bits())).collect();
    let ys: Vec<(u64, u64)> = b.iter().map(|(i, p)| (i, p.to_bits())).collect();
    assert_eq!(xs, ys, "{what}: served result is not bit-identical");
}

fn assert_report_identical(served: &QuTracerReport, local: &QuTracerReport) {
    assert_dist_identical(&served.distribution, &local.distribution, "distribution");
    assert_dist_identical(&served.global, &local.global, "global");
    assert_eq!(served.locals.len(), local.locals.len());
    for (i, ((da, pa), (db, pb))) in served.locals.iter().zip(&local.locals).enumerate() {
        assert_eq!(pa, pb, "locals[{i}] positions");
        assert_dist_identical(da, db, &format!("locals[{i}]"));
    }
    assert_eq!(served.stats.n_circuits, local.stats.n_circuits);
    assert_eq!(served.stats.engine_mix, local.stats.engine_mix);
}

/// Two prefix-sharing QAOA variants (same mixer structure, different
/// parameters), submitted concurrently from two client threads, batched
/// into one cross-request trie — both responses must be bit-for-bit
/// equal to one-shot pipeline calls.
#[test]
fn concurrent_prefix_sharing_jobs_are_served_bit_identically() {
    let n = 4;
    let edges = ring_graph(n);
    let circuits: Vec<Circuit> = (0..2)
        .map(|v| qaoa_maxcut(n, &edges, &QaoaParams::seeded(1, v)))
        .collect();
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::single();

    // A long deadline so both submissions land in the same batch.
    let service_cfg = ServiceConfig {
        batch_max_requests: 2,
        batch_deadline: Duration::from_millis(250),
        ..ServiceConfig::default()
    };
    let server = serve("127.0.0.1:0", runner(), service_cfg).expect("bind ephemeral port");
    let addr = server.addr();

    let served: Vec<QuTracerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = circuits
            .iter()
            .map(|circuit| {
                let measured = &measured;
                let cfg = &cfg;
                scope.spawn(move || {
                    let client = ServiceClient::new(addr);
                    let job = client.submit(circuit, measured, cfg).expect("submit");
                    client
                        .wait_result(job, Duration::from_secs(120))
                        .expect("result")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = server.service().stats();
    server.shutdown();

    let local_runner = runner();
    for (circuit, report) in circuits.iter().zip(&served) {
        let local = run_qutracer(&local_runner, circuit, &measured, &cfg);
        assert_report_identical(report, &local);
    }

    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
    // Both requests went through the batcher; whether they shared one
    // batch depends on arrival timing, but the trie must have seen both.
    assert_eq!(stats.batched_requests, 2);
    assert!(
        stats.batch_trie.shared_gate_fraction() >= 0.0,
        "trie stats must be populated"
    );
}

/// Submitting the same circuit again must serve from the cache and still
/// be bit-identical — the cache can forget, it can never lie.
#[test]
fn repeat_submission_hits_cache_and_stays_bit_identical() {
    let edges = ring_graph(4);
    let circuit = qaoa_maxcut(4, &edges, &QaoaParams::seeded(1, 7));
    let measured = [0, 1, 2, 3];
    let cfg = QuTracerConfig::single();

    let server = serve("127.0.0.1:0", runner(), ServiceConfig::default()).expect("bind");
    let client = ServiceClient::new(server.addr());

    let first = {
        let job = client.submit(&circuit, &measured, &cfg).unwrap();
        client.wait_result(job, Duration::from_secs(120)).unwrap()
    };
    let second = {
        let job = client.submit(&circuit, &measured, &cfg).unwrap();
        client.wait_result(job, Duration::from_secs(120)).unwrap()
    };

    let cache = server.service().cache_stats();
    let stats = server.service().stats();
    server.shutdown();

    assert_report_identical(&second, &first);
    let local = run_qutracer(&runner(), &circuit, &measured, &cfg);
    assert_report_identical(&first, &local);

    assert!(cache.hits > 0, "second submission produced no cache hits");
    assert_eq!(stats.completed, 2);
    assert!(
        stats.executed_jobs < 2 * stats.distinct_jobs.max(1),
        "repeat submission re-executed everything: {stats:?}"
    );
}

/// Admission control: with no batcher draining, a capacity-1 queue
/// rejects the second submission with a typed `Overloaded` — it must
/// never block the caller.
#[test]
fn full_queue_rejects_with_typed_overloaded() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    let cfg = QuTracerConfig::single();

    let service = MitigationService::new(
        runner(),
        ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    // No spawn_batcher(): the queue fills and stays full.
    service.submit(&c, &[0, 1], &cfg).expect("first admission");
    let err = service
        .submit(&c, &[0, 1], &cfg)
        .expect_err("second submission must be rejected");
    match err {
        ServiceError::Overloaded { capacity } => assert_eq!(capacity, 1),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.rejected, 1);

    // After shutdown, admission reports ShuttingDown instead.
    service.shutdown();
    match service.submit(&c, &[0, 1], &cfg) {
        Err(ServiceError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

/// Planning failures surface as typed 4xx-mapped errors at submit time
/// (not as a queued job that later fails).
#[test]
fn plan_errors_are_rejected_at_submission() {
    let mut c = Circuit::new(3);
    c.h(0);
    let service = MitigationService::new(runner(), ServiceConfig::default());
    // Pair tracing needs at least 2 measured qubits.
    let cfg = QuTracerConfig {
        subset_size: 2,
        ..QuTracerConfig::default()
    };
    let err = service.submit(&c, &[0], &cfg).expect_err("plan must fail");
    assert!(
        matches!(err, ServiceError::Plan(_)),
        "expected Plan error, got {err:?}"
    );
    assert_eq!(service.stats().submitted, 0);
    service.shutdown();
}

/// Shutdown landing mid-batch: the in-flight request completes with a
/// report bit-identical to a fault-free run, the still-queued request
/// fails with a typed `ShuttingDown`, and `wait_result` never hangs on
/// either — the drain-shutdown contract.
#[test]
fn shutdown_mid_batch_completes_in_flight_and_fails_queued_typed() {
    let edges = ring_graph(3);
    let circuit = qaoa_maxcut(3, &edges, &QaoaParams::seeded(5, 1));
    let measured = [0, 1, 2];
    let cfg = QuTracerConfig::single();

    // Latency-only chaos: every batch stalls ~300 ms inside the runner,
    // giving shutdown a wide window to land while job A is in flight.
    // Latency never changes results, so A must still be bit-identical.
    let chaos = ChaosRunner::new(
        runner(),
        ChaosConfig {
            seed: 11,
            latency_rate: 1.0,
            latency_millis: 300,
            ..ChaosConfig::default()
        },
    );
    let service = MitigationService::new(
        chaos,
        ServiceConfig {
            batch_max_requests: 1,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    let batcher = service.spawn_batcher();

    let job_a = service.submit(&circuit, &measured, &cfg).expect("submit A");
    // Wait until the batcher has picked A up — from then on it is
    // in-flight work that shutdown must let finish.
    let pickup = Instant::now();
    while !matches!(
        service.status(job_a),
        Ok(JobState::Running(_) | JobState::Done(_))
    ) {
        assert!(
            pickup.elapsed() < Duration::from_secs(30),
            "job A was never picked up"
        );
        std::thread::sleep(Duration::from_micros(200));
    }

    let job_b = service.submit(&circuit, &measured, &cfg).expect("submit B");
    service.shutdown();

    // B was still queued: typed ShuttingDown, delivered without a hang.
    match service.wait_result(job_b, Duration::from_secs(30)) {
        Err(ServiceError::ShuttingDown) => {}
        other => panic!("queued job B should fail ShuttingDown, got {other:?}"),
    }
    // A was in flight: it completes, and the report is exact.
    let served = service
        .wait_result(job_a, Duration::from_secs(120))
        .expect("in-flight job A must complete across shutdown");
    let local = run_qutracer(&runner(), &circuit, &measured, &cfg);
    assert_report_identical(&served, &local);

    batcher
        .join()
        .expect("batcher exits cleanly after the drain");
    let stats = service.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 1);
}

/// An adaptive two-round session served over HTTP must be bit-identical
/// to the same session run offline: the service executes the pilot
/// through its batcher, requeues the final round (served from the result
/// cache — same jobs), and the recombined report matches
/// `MitigationPlan::run_sampled` to the last bit, including the per-round
/// shot accounting on the wire.
#[test]
fn adaptive_session_is_served_bit_identical_to_offline() {
    let edges = ring_graph(4);
    let circuit = qaoa_maxcut(4, &edges, &QaoaParams::seeded(3, 2));
    let measured = [0, 1, 2, 3];
    let cfg = QuTracerConfig::single();
    let policy = ShotPolicy::Adaptive {
        pilot_fraction: 0.25,
    };
    let total = 40_000u64;
    let seed = 7u64;

    let server = serve("127.0.0.1:0", runner(), ServiceConfig::default()).expect("bind");
    let client = ServiceClient::new(server.addr());
    let job = client
        .submit_sampled(&circuit, &measured, &cfg, total, &policy, seed)
        .expect("submit session");
    let served = client.wait_result(job, Duration::from_secs(120)).unwrap();
    let cache = server.service().cache_stats();
    server.shutdown();

    let plan = QuTracer::plan(&circuit, &measured, &cfg).unwrap();
    let local = plan
        .run_sampled(&runner(), total as usize, policy, seed)
        .unwrap();

    assert_report_identical(&served, &local);
    assert_eq!(served.stats.total_shots, local.stats.total_shots);
    assert_eq!(served.stats.round_shots, local.stats.round_shots);
    let rounds = served.stats.round_shots.as_ref().expect("round accounting");
    assert_eq!(rounds.len(), 2, "session must be genuinely two-round");
    assert_eq!(rounds.iter().sum::<u64>(), total);
    // The adaptive final round resubmits the same jobs, so it is served
    // entirely from the result cache.
    assert!(cache.hits > 0, "final round produced no cache hits");
}

/// A sampled session with an unfundable budget (or malformed policy) is
/// rejected at submission with a typed error, not queued to fail later.
#[test]
fn sampled_submissions_validate_budget_and_policy_at_admission() {
    let edges = ring_graph(3);
    let circuit = qaoa_maxcut(3, &edges, &QaoaParams::seeded(4, 0));
    let measured = [0, 1, 2];
    let cfg = QuTracerConfig::single();
    let service = MitigationService::new(runner(), ServiceConfig::default());

    // Budget below the plan's 1-shot-per-program floor.
    let err = service
        .submit_sampled(&circuit, &measured, &cfg, 1, ShotPolicy::Uniform, 0)
        .expect_err("one shot cannot fund the floor");
    assert!(
        matches!(
            err,
            ServiceError::Exec(qt_core::ExecError::InsufficientShotBudget { .. })
        ),
        "got {err:?}"
    );

    // Malformed adaptive fraction.
    let err = service
        .submit_sampled(
            &circuit,
            &measured,
            &cfg,
            10_000,
            ShotPolicy::Adaptive {
                pilot_fraction: 1.5,
            },
            0,
        )
        .expect_err("pilot fraction outside [0, 1]");
    assert!(
        matches!(
            err,
            ServiceError::Exec(qt_core::ExecError::InvalidPilotFraction { .. })
        ),
        "got {err:?}"
    );
    assert_eq!(service.stats().submitted, 0);
    service.shutdown();
}

/// The HTTP shell maps unknown jobs and unknown routes to typed errors.
#[test]
fn http_shell_maps_errors_to_statuses() {
    let server = serve("127.0.0.1:0", runner(), ServiceConfig::default()).expect("bind");
    let client = ServiceClient::new(server.addr());

    match client.result(999_999) {
        Err(e) => assert!(format!("{e}").contains("not_found"), "got: {e}"),
        Ok(r) => panic!("unknown job returned {r:?}"),
    }
    server.shutdown();
}
