//! Chaos through a live server: fault schedules injected under real TCP
//! clients. The service-level invariant is the strong form of the chaos
//! contract — every request terminates with a report **bit-identical** to
//! the fault-free run or with a typed error, the process never dies, and
//! a panic quarantined to one request never fails a cohabiting healthy
//! one.

use qt_algos::{qaoa_maxcut, ring_graph, vqe_ansatz, QaoaParams};
use qt_core::{run_qutracer, JobKind, QuTracer, QuTracerConfig, QuTracerReport};
use qt_dist::Distribution;
use qt_serve::http::{read_message, response_status, write_request};
use qt_serve::{serve, ClientError, ServiceClient, ServiceConfig};
use qt_sim::{Backend, ChaosConfig, ChaosRunner, Executor, Fault, JobKey, NoiseModel, RetryPolicy};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn runner() -> Executor {
    Executor::with_backend(
        NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
        Backend::DensityMatrix,
    )
}

/// Base seed from the CI chaos matrix (`CHAOS_SEED`): mixed into seeded
/// schedules so each matrix entry replays a distinct deterministic fault
/// set. Surgical per-job overrides and rate-1.0 schedules are unaffected.
fn matrix_seed(seed: u64) -> u64 {
    let base: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    seed ^ base.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn assert_dist_identical(a: &Distribution, b: &Distribution, what: &str) {
    let xs: Vec<(u64, u64)> = a.iter().map(|(i, p)| (i, p.to_bits())).collect();
    let ys: Vec<(u64, u64)> = b.iter().map(|(i, p)| (i, p.to_bits())).collect();
    assert_eq!(xs, ys, "{what}: served result is not bit-identical");
}

fn assert_report_identical(served: &QuTracerReport, local: &QuTracerReport) {
    assert_dist_identical(&served.distribution, &local.distribution, "distribution");
    assert_dist_identical(&served.global, &local.global, "global");
    assert_eq!(served.locals.len(), local.locals.len());
    for (i, ((da, pa), (db, pb))) in served.locals.iter().zip(&local.locals).enumerate() {
        assert_eq!(pa, pb, "locals[{i}] positions");
        assert_dist_identical(da, db, &format!("locals[{i}]"));
    }
}

/// The dedup key of `circuit`'s global planned job — a fault target that
/// belongs to this request and (for structurally distinct circuits) to no
/// other.
fn global_job_key(
    circuit: &qt_circuit::Circuit,
    measured: &[usize],
    cfg: &QuTracerConfig,
) -> JobKey {
    let plan = QuTracer::plan(circuit, measured, cfg).expect("plannable");
    let key = plan
        .programs()
        .find(|(_, tags)| tags.iter().any(|t| t.kind == JobKind::Global))
        .map(|(job, _)| job.dedup_key())
        .expect("every plan has a global job");
    key
}

fn raw_get(addr: SocketAddr, path: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, "GET", path, "").expect("write");
    let msg = read_message(&mut stream).expect("read");
    response_status(&msg).expect("status line")
}

/// A panic quarantined to one request's job must fail exactly that
/// request (typed 500, kind `exec_error`) while the healthy request
/// batched *with* it is served bit-identically — batch cohabitation never
/// spreads a panic.
#[test]
fn panic_in_one_request_never_fails_cohabiting_healthy_request() {
    let n = 4;
    let healthy = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(1, 2));
    let doomed = vqe_ansatz(n, 2, 5);
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::single();

    // Surgical chaos: only the doomed circuit's global job panics.
    let key = global_job_key(&doomed, &measured, &cfg);
    let chaos = ChaosRunner::new(runner(), ChaosConfig::quiet(7)).with_fault(key, Fault::Panic);

    let service_cfg = ServiceConfig {
        batch_max_requests: 2,
        // Wide drain window so both submissions share one batch.
        batch_deadline: Duration::from_millis(250),
        ..ServiceConfig::default()
    };
    let server = serve("127.0.0.1:0", chaos, service_cfg).expect("bind");
    let addr = server.addr();

    let (healthy_report, doomed_err) = std::thread::scope(|scope| {
        let h = {
            let (healthy, measured, cfg) = (&healthy, &measured, &cfg);
            scope.spawn(move || {
                let client = ServiceClient::new(addr);
                let job = client
                    .submit(healthy, measured, cfg)
                    .expect("submit healthy");
                client.wait_result(job, Duration::from_secs(120))
            })
        };
        let d = {
            let (doomed, measured, cfg) = (&doomed, &measured, &cfg);
            scope.spawn(move || {
                let client = ServiceClient::new(addr);
                let job = client.submit(doomed, measured, cfg).expect("submit doomed");
                client.wait_result(job, Duration::from_secs(120))
            })
        };
        (h.join().unwrap(), d.join().unwrap())
    });

    let stats = server.service().stats();
    server.shutdown();

    // The healthy cohabitant is bit-identical to a fault-free local run.
    let local = run_qutracer(&runner(), &healthy, &measured, &cfg);
    assert_report_identical(
        &healthy_report.expect("healthy request must be served"),
        &local,
    );

    // The doomed request failed typed — a 500 exec_error, not a hang, and
    // the panic itself is visible in the message.
    match doomed_err.expect_err("doomed request must fail") {
        ClientError::Server {
            status,
            kind,
            message,
        } => {
            assert_eq!(status, 500, "exec failures map to 500");
            assert_eq!(kind, "exec_error");
            assert!(
                message.contains("panic"),
                "failure names the panic: {message}"
            );
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }

    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 1);
    assert!(
        stats.run_failures.isolated_panics >= 1,
        "panic was quarantined: {stats:?}"
    );
}

/// Transient chaos recovered inside the service's retry budget is
/// invisible in the data: every served report is bit-identical to the
/// fault-free run, and only the failure counters betray the retries.
#[test]
fn transient_chaos_recovers_into_bit_identical_reports() {
    let n = 4;
    let circuits = [
        qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(1, 4)),
        vqe_ansatz(n, 1, 11),
    ];
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::single();

    let chaos = ChaosRunner::new(
        runner(),
        ChaosConfig {
            seed: matrix_seed(13),
            transient_rate: 0.4,
            corrupt_rate: 0.3,
            max_transient_attempts: 2,
            ..ChaosConfig::default()
        },
    );
    let service_cfg = ServiceConfig {
        retry: RetryPolicy::immediate(3),
        ..ServiceConfig::default()
    };
    let server = serve("127.0.0.1:0", chaos, service_cfg).expect("bind");
    let client = ServiceClient::new(server.addr());

    for circuit in &circuits {
        let job = client.submit(circuit, &measured, &cfg).expect("submit");
        let served = client
            .wait_result(job, Duration::from_secs(120))
            .expect("chaos within the retry budget must still serve");
        let local = run_qutracer(&runner(), circuit, &measured, &cfg);
        assert_report_identical(&served, &local);
    }

    let stats = server.service().stats();
    server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
}

/// A request that cannot be served inside the configured deadline fails
/// with a typed 504 (`deadline_exceeded`) — the client is released, never
/// left polling a zombie job.
#[test]
fn overdue_request_fails_with_typed_504() {
    let mut c = qt_circuit::Circuit::new(2);
    c.h(0).cx(0, 1);
    let cfg = QuTracerConfig::single();

    // Every batch stalls ~400 ms in the runner; the deadline is 40 ms.
    let chaos = ChaosRunner::new(
        runner(),
        ChaosConfig {
            seed: 3,
            latency_rate: 1.0,
            latency_millis: 400,
            ..ChaosConfig::default()
        },
    );
    let service_cfg = ServiceConfig {
        request_deadline: Some(Duration::from_millis(40)),
        ..ServiceConfig::default()
    };
    let server = serve("127.0.0.1:0", chaos, service_cfg).expect("bind");
    let client = ServiceClient::new(server.addr());

    let job = client.submit(&c, &[0, 1], &cfg).expect("submit");
    match client.wait_result(job, Duration::from_secs(60)) {
        Err(ClientError::Server { status, kind, .. }) => {
            assert_eq!(status, 504, "deadline maps to 504");
            assert_eq!(kind, "deadline_exceeded");
        }
        other => panic!("expected a typed 504, got {other:?}"),
    }
    let stats = server.service().stats();
    server.shutdown();
    assert_eq!(stats.deadline_expired, 1, "{stats:?}");
}

/// Liveness vs readiness: `/health` answers 200 as long as the process
/// lives, `/ready` flips to 503 the moment admission closes.
#[test]
fn health_stays_up_while_ready_flips_on_drain() {
    let server = serve("127.0.0.1:0", runner(), ServiceConfig::default()).expect("bind");
    let addr = server.addr();

    assert_eq!(raw_get(addr, "/health"), 200);
    assert_eq!(raw_get(addr, "/ready"), 200);

    // Begin draining (admission closes; the accept loop still answers).
    server.service().shutdown();
    assert_eq!(raw_get(addr, "/health"), 200, "liveness survives the drain");
    assert_eq!(raw_get(addr, "/ready"), 503, "readiness reports draining");

    server.shutdown();
}

/// The client's connect retry: against a dead address the budget is
/// spent and the typed `Unreachable` names the attempts — no hang, no
/// bare transport error.
#[test]
fn dead_server_yields_typed_unreachable_after_retry_budget() {
    // Bind-then-drop: the port is (almost surely) dead afterwards.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let client = ServiceClient::new(addr).with_connect_retry(3, Duration::from_millis(1));
    let mut c = qt_circuit::Circuit::new(2);
    c.h(0).cx(0, 1);
    match client.submit(&c, &[0, 1], &QuTracerConfig::single()) {
        Err(ClientError::Unreachable { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected Unreachable, got {other:?}"),
    }
}
