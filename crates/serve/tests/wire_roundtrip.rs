//! Exact round-trip properties of the wire codec: every value that
//! crosses the service boundary decodes **bit-identically** through
//! `Json::parse(encode(x).to_string())`, on *both* internal `Mass` arms
//! (dense and sparse) of `Distribution`/`Counts`. The decoded
//! representation may pick a different arm — equality in `qt-dist`
//! compares nonzero streams, and the entry streams here are compared at
//! the `f64::to_bits` level.

use qt_algos::{qaoa_maxcut, ring_graph, QaoaParams};
use qt_baselines::OverheadStats;
use qt_core::{run_qutracer, QuTracerConfig, ShotPolicy, TraceConfig};
use qt_dist::{Counts, Distribution};
use qt_serve::json::Json;
use qt_serve::wire::{
    circuit_from_json, circuit_to_json, config_from_json, config_to_json, counts_from_json,
    counts_to_json, distribution_from_json, distribution_to_json, overhead_stats_from_json,
    overhead_stats_to_json, report_from_json, report_to_json, shot_policy_from_json,
    shot_policy_to_json,
};
use qt_sim::{Executor, NoiseModel, TrieStats};

/// Encode → serialize → parse → decode, the full wire path.
fn through_wire(j: Json) -> Json {
    Json::parse(&j.to_string()).expect("codec emitted unparseable JSON")
}

fn dist_bits(d: &Distribution) -> Vec<(u64, u64)> {
    d.iter().map(|(i, p)| (i, p.to_bits())).collect()
}

fn assert_dist_roundtrip(d: &Distribution) {
    let back = distribution_from_json(&through_wire(distribution_to_json(d))).unwrap();
    assert_eq!(back.n_bits(), d.n_bits());
    assert_eq!(dist_bits(&back), dist_bits(d), "probabilities not bitwise");
}

/// Probabilities chosen to stress shortest-roundtrip formatting: a
/// subnormal, an odd repeating binary fraction, and the complement mass.
fn awkward_probs() -> Vec<f64> {
    let tiny = 5e-324; // smallest positive subnormal
    let odd = 0.1 + 0.2; // 0.30000000000000004
    vec![tiny, odd, 0.25, 1.0 - tiny - odd - 0.25]
}

#[test]
fn distribution_roundtrips_on_both_mass_arms() {
    let d = Distribution::try_from_probs(2, awkward_probs()).unwrap();
    // threshold 0.0: every density qualifies as dense; 2.0: none does.
    assert_dist_roundtrip(&d.clone().with_density_threshold(0.0));
    assert_dist_roundtrip(&d.with_density_threshold(2.0));
}

#[test]
fn wide_sparse_distribution_roundtrips() {
    // 48-bit outcomes: far past f64's contiguous-integer range ÷ density
    // heuristics; exercises the u64-as-string convention.
    let hi = (1u64 << 48) - 1;
    let d = Distribution::try_from_entries(48, vec![(0, 0.5), (hi, 0.5)]).unwrap();
    assert_dist_roundtrip(&d.with_density_threshold(2.0));
}

#[test]
fn counts_roundtrip_on_both_mass_arms() {
    // Counts above 2^53 would corrupt silently through an f64-based
    // reader; the string convention must carry them exactly.
    let big = (1u64 << 53) + 1;
    let c = Counts::try_from_entries(40, vec![(0, big), (7, 3), ((1u64 << 40) - 1, 1)]).unwrap();
    for arm in [0.0, 2.0] {
        let armed = c.clone().with_density_threshold(arm);
        let back = counts_from_json(&through_wire(counts_to_json(&armed))).unwrap();
        assert_eq!(back.n_bits(), armed.n_bits());
        let xs: Vec<(u64, u64)> = back.iter().collect();
        let ys: Vec<(u64, u64)> = armed.iter().collect();
        assert_eq!(xs, ys, "counts diverged on density arm {arm}");
    }
}

#[test]
fn overhead_stats_roundtrip_with_and_without_options() {
    let full = OverheadStats {
        n_circuits: 17,
        normalized_shots: 0.1 + 0.2,
        avg_two_qubit_gates: 6.125,
        global_two_qubit_gates: 12,
        batch: Some(TrieStats {
            n_jobs: 5,
            n_nodes: 40,
            request_gates: 100,
            unique_gates: 60,
            interior_gates: 30,
        }),
        total_shots: Some(u64::MAX),
        round_shots: Some(vec![1000, u64::MAX - 7]),
        engine_mix: Some(vec![("density".into(), 4), ("stabilizer".into(), 1)]),
        failures: Some(qt_sim::FailureStats {
            retries: u64::MAX - 1,
            retried_jobs: 3,
            failed_jobs: 1,
            isolated_panics: 2,
            corrupt_outputs: 4,
            voided_subsets: 5,
        }),
    };
    let bare = OverheadStats {
        batch: None,
        total_shots: None,
        round_shots: None,
        engine_mix: None,
        failures: None,
        ..full.clone()
    };
    for s in [full, bare] {
        let back = overhead_stats_from_json(&through_wire(overhead_stats_to_json(&s))).unwrap();
        assert_eq!(back.n_circuits, s.n_circuits);
        assert_eq!(
            back.normalized_shots.to_bits(),
            s.normalized_shots.to_bits()
        );
        assert_eq!(
            back.avg_two_qubit_gates.to_bits(),
            s.avg_two_qubit_gates.to_bits()
        );
        assert_eq!(back.global_two_qubit_gates, s.global_two_qubit_gates);
        assert_eq!(back.batch, s.batch);
        assert_eq!(back.total_shots, s.total_shots);
        assert_eq!(back.round_shots, s.round_shots);
        assert_eq!(back.engine_mix, s.engine_mix);
        assert_eq!(back.failures, s.failures);
    }
}

#[test]
fn full_report_roundtrips_bitwise() {
    let edges = ring_graph(4);
    let circuit = qaoa_maxcut(4, &edges, &QaoaParams::seeded(1, 3));
    let runner = Executor::new(NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02));
    let report = run_qutracer(&runner, &circuit, &[0, 1, 2, 3], &QuTracerConfig::single());

    let back = report_from_json(&through_wire(report_to_json(&report))).unwrap();

    assert_eq!(
        dist_bits(&back.distribution),
        dist_bits(&report.distribution)
    );
    assert_eq!(dist_bits(&back.global), dist_bits(&report.global));
    assert_eq!(back.locals.len(), report.locals.len());
    for ((da, pa), (db, pb)) in back.locals.iter().zip(&report.locals) {
        assert_eq!(pa, pb);
        assert_eq!(dist_bits(da), dist_bits(db));
    }
    assert_eq!(back.skipped.len(), report.skipped.len());
    assert_eq!(back.stats.n_circuits, report.stats.n_circuits);
    assert_eq!(back.stats.batch, report.stats.batch);
    assert_eq!(back.stats.engine_mix, report.stats.engine_mix);
    assert_eq!(back.subset_stats, report.subset_stats);
}

#[test]
fn circuit_roundtrip_preserves_gates_params_and_layers() {
    let edges = ring_graph(5);
    let mut c = qaoa_maxcut(5, &edges, &QaoaParams::seeded(2, 9));
    c.mark_layer(); // trailing bound: stresses the bounds-replay decoder
    let back = circuit_from_json(&circuit_to_json(&c)).unwrap();
    assert_eq!(back.n_qubits(), c.n_qubits());
    assert_eq!(back.layer_bounds(), c.layer_bounds());
    assert_eq!(back.instructions().len(), c.instructions().len());
    for (a, b) in back.instructions().iter().zip(c.instructions()) {
        assert_eq!(a.qubits, b.qubits);
        assert_eq!(a.gate.name(), b.gate.name());
        assert_eq!(format!("{:?}", a.gate), format!("{:?}", b.gate));
    }
}

#[test]
fn config_roundtrip_and_sparse_decode() {
    let mut cfg = QuTracerConfig::single();
    cfg.symmetric_subsets = true;
    cfg.trace = TraceConfig {
        optimize_circuits: false,
        state_traceback: false,
        checked_layers: Some(3),
        use_reduced_preps: false,
        den_floor: 0.125,
    };
    let back = config_from_json(&through_wire(config_to_json(&cfg))).unwrap();
    assert_eq!(back.subset_size, cfg.subset_size);
    assert_eq!(back.symmetric_subsets, cfg.symmetric_subsets);
    assert_eq!(back.trace.optimize_circuits, cfg.trace.optimize_circuits);
    assert_eq!(back.trace.state_traceback, cfg.trace.state_traceback);
    assert_eq!(back.trace.checked_layers, cfg.trace.checked_layers);
    assert_eq!(back.trace.use_reduced_preps, cfg.trace.use_reduced_preps);
    assert_eq!(
        back.trace.den_floor.to_bits(),
        cfg.trace.den_floor.to_bits()
    );

    // Clients may send a partial config; missing fields take defaults.
    let sparse = config_from_json(&Json::parse(r#"{"subset_size": 2}"#).unwrap()).unwrap();
    assert_eq!(sparse.subset_size, 2);
    assert_eq!(sparse.trace.den_floor, TraceConfig::default().den_floor);
}

#[test]
fn shot_policy_roundtrips_all_variants_bitwise() {
    let awkward = 0.1 + 0.2; // 0.30000000000000004: stresses float formatting
    for p in [
        ShotPolicy::Uniform,
        ShotPolicy::WeightedByFanout,
        ShotPolicy::Adaptive {
            pilot_fraction: awkward,
        },
        ShotPolicy::Adaptive {
            pilot_fraction: 0.0,
        },
        ShotPolicy::Adaptive {
            pilot_fraction: 1.0,
        },
    ] {
        let back = shot_policy_from_json(&through_wire(shot_policy_to_json(&p))).unwrap();
        match (back, p) {
            (
                ShotPolicy::Adaptive { pilot_fraction: a },
                ShotPolicy::Adaptive { pilot_fraction: b },
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            (a, b) => assert_eq!(a, b),
        }
    }
}

#[test]
fn malformed_shot_policies_are_rejected_at_the_boundary() {
    for (doc, why) in [
        (
            r#"{"kind": "adaptive", "pilot_fraction": -0.25}"#,
            "negative",
        ),
        (r#"{"kind": "adaptive", "pilot_fraction": 1.5}"#, "above 1"),
        (
            r#"{"kind": "adaptive", "pilot_fraction": "lots"}"#,
            "non-numeric",
        ),
        (r#"{"kind": "adaptive"}"#, "missing fraction"),
        (r#"{"kind": "neyman_or_bust"}"#, "unknown variant"),
        (r#"{}"#, "missing kind"),
    ] {
        let err = shot_policy_from_json(&Json::parse(doc).unwrap()).unwrap_err();
        assert!(
            err.contains("shot_policy"),
            "{why}: error lacks context: {err}"
        );
    }
}

#[test]
fn malformed_round_shots_are_rejected_with_context() {
    // Entries must be string-encoded u64s, like every u64 on the wire.
    for doc in [
        r#"{"n_circuits": 1, "normalized_shots": 1.0, "avg_two_qubit_gates": 0.0,
            "global_two_qubit_gates": 0, "batch": null, "total_shots": null,
            "round_shots": [1000, 2000], "engine_mix": null, "failures": null}"#,
        r#"{"n_circuits": 1, "normalized_shots": 1.0, "avg_two_qubit_gates": 0.0,
            "global_two_qubit_gates": 0, "batch": null, "total_shots": null,
            "round_shots": ["-5"], "engine_mix": null, "failures": null}"#,
        r#"{"n_circuits": 1, "normalized_shots": 1.0, "avg_two_qubit_gates": 0.0,
            "global_two_qubit_gates": 0, "batch": null, "total_shots": null,
            "round_shots": "1000", "engine_mix": null, "failures": null}"#,
    ] {
        let err = overhead_stats_from_json(&Json::parse(doc).unwrap()).unwrap_err();
        assert!(err.contains("round_shots"), "got: {err}");
    }
}

#[test]
fn malformed_wire_values_are_rejected_with_context() {
    let bad_gate = r#"{"n_qubits": 2, "gates": [{"g": "cx", "q": [0, 0]}], "layers": []}"#;
    let err = circuit_from_json(&Json::parse(bad_gate).unwrap()).unwrap_err();
    assert!(err.contains("repeated operand"), "got: {err}");

    let bad_prob = r#"{"bits": 2, "entries": [["4", 0.5]]}"#;
    let err = distribution_from_json(&Json::parse(bad_prob).unwrap()).unwrap_err();
    assert!(err.starts_with("distribution:"), "got: {err}");

    let bad_count = r#"{"bits": 2, "entries": [["1", "-3"]]}"#;
    assert!(counts_from_json(&Json::parse(bad_count).unwrap()).is_err());
}
