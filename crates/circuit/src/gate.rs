//! The gate set used by the QuTracer workloads and mitigation circuits.

use qt_math::{Complex, Matrix};

/// Structural class of a gate's matrix, used by simulator kernels to pick a
/// specialized application routine without inspecting matrix entries.
///
/// The variants order from most to least structured; a gate's
/// [`Gate::structure`] is the *static* class of its matrix shape. Degenerate
/// parameter values (e.g. `Rz(0.0)`) may admit an even more specialized
/// runtime classification, so consumers should treat this as "at least this
/// structured".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStructure {
    /// Identity except for a phase on the all-ones basis state
    /// (`Z`, `S`, `T`, `Phase`, `Cz`, `Cp`, `Ccp`).
    ControlledPhase,
    /// Diagonal in the computational basis but not a controlled phase
    /// (`Rz`, `Crz`).
    Diagonal,
    /// Exactly one nonzero entry per row and column
    /// (`X`, `Y`, `Cx`, `Cy`, `Swap`).
    Permutation,
    /// Dense single-qubit matrix (`H`, `Sx`, `Rx`, `Ry`, `U`).
    SingleQubitDense,
    /// Identity on the control=0 subspace, dense on the control=1 subspace
    /// (`Crx`, `Cry`).
    ControlledDense,
    /// No exploitable structure.
    Dense,
}

/// A gate of the Clifford group, normalized **up to global phase** — the
/// alphabet of `qt-sim`'s stabilizer-tableau engine.
///
/// [`Gate::clifford_class`] maps every statically recognizable Clifford gate
/// onto one of these variants; parametric rotations are snapped to quarter
/// turns within an absolute angle tolerance of `1e-12` radians. `I` stands
/// for "acts as the identity on its operands" for any arity (e.g. `Cp(0.0)`),
/// so consumers can simply skip it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordGate {
    /// Identity on the gate's operands (any arity).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// Square root of X (`Rx(π/2)` up to global phase).
    Sx,
    /// Inverse square root of X (`Rx(-π/2)` up to global phase).
    Sxdg,
    /// Square root of Y: `Ry(π/2) = H·Z` exactly.
    Sy,
    /// Inverse square root of Y: `Ry(-π/2) = Z·H` exactly.
    Sydg,
    /// Controlled-X. Operands: control, target.
    Cx,
    /// Controlled-Y. Operands: control, target.
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP.
    Swap,
}

/// A quantum gate.
///
/// The gate set covers everything the paper's benchmarks need: the Clifford
/// generators, parametric rotations, controlled phases (QFT/QPE/arithmetic),
/// and the doubly-controlled phase used by the QFT multiplier.
///
/// Operand ordering: for controlled gates the **control comes first**. In the
/// gate's local matrix (see [`Gate::matrix`]) operand 0 is the
/// least-significant bit of the basis index.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// T† gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Rotation about X by the given angle (radians).
    Rx(f64),
    /// Rotation about Y by the given angle (radians).
    Ry(f64),
    /// Rotation about Z by the given angle (radians).
    Rz(f64),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase(f64),
    /// Generic single-qubit gate `U(θ, φ, λ)` (Qiskit's U convention).
    U(f64, f64, f64),
    /// Controlled-X. Operands: control, target.
    Cx,
    /// Controlled-Y. Operands: control, target.
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled phase `diag(1,1,1,e^{iθ})` (symmetric).
    Cp(f64),
    /// Controlled `Rz`. Operands: control, target.
    Crz(f64),
    /// Controlled `Rx`. Operands: control, target.
    Crx(f64),
    /// Controlled `Ry`. Operands: control, target.
    Cry(f64),
    /// SWAP.
    Swap,
    /// Doubly-controlled phase `diag(1,...,1,e^{iθ})` on three qubits
    /// (symmetric); used by the QFT multiplier.
    Ccp(f64),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn n_qubits(&self) -> usize {
        use Gate::*;
        match self {
            H | X | Y | Z | S | Sdg | T | Tdg | Sx | Rx(_) | Ry(_) | Rz(_) | Phase(_) | U(..) => 1,
            Cx | Cy | Cz | Cp(_) | Crz(_) | Crx(_) | Cry(_) | Swap => 2,
            Ccp(_) => 3,
        }
    }

    /// A short lowercase mnemonic (Qiskit-style).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            Phase(_) => "p",
            U(..) => "u",
            Cx => "cx",
            Cy => "cy",
            Cz => "cz",
            Cp(_) => "cp",
            Crz(_) => "crz",
            Crx(_) => "crx",
            Cry(_) => "cry",
            Swap => "swap",
            Ccp(_) => "ccp",
        }
    }

    /// A stable structural encoding: a per-variant tag plus the gate's
    /// parameters, zero-filled beyond the variant's arity. Two gates have
    /// equal encodings **iff** they are the same variant with bit-equal
    /// parameters (exactly when their `Debug` forms agree — `f64` Debug is
    /// shortest-roundtrip) — the basis of the allocation-free structural
    /// job keys in `qt-sim`.
    pub fn structural_encoding(&self) -> (u8, [f64; 3]) {
        use Gate::*;
        match *self {
            H => (0, [0.0; 3]),
            X => (1, [0.0; 3]),
            Y => (2, [0.0; 3]),
            Z => (3, [0.0; 3]),
            S => (4, [0.0; 3]),
            Sdg => (5, [0.0; 3]),
            T => (6, [0.0; 3]),
            Tdg => (7, [0.0; 3]),
            Sx => (8, [0.0; 3]),
            Rx(t) => (9, [t, 0.0, 0.0]),
            Ry(t) => (10, [t, 0.0, 0.0]),
            Rz(t) => (11, [t, 0.0, 0.0]),
            Phase(t) => (12, [t, 0.0, 0.0]),
            U(t, p, l) => (13, [t, p, l]),
            Cx => (14, [0.0; 3]),
            Cy => (15, [0.0; 3]),
            Cz => (16, [0.0; 3]),
            Cp(t) => (17, [t, 0.0, 0.0]),
            Crz(t) => (18, [t, 0.0, 0.0]),
            Crx(t) => (19, [t, 0.0, 0.0]),
            Cry(t) => (20, [t, 0.0, 0.0]),
            Swap => (21, [0.0; 3]),
            Ccp(t) => (22, [t, 0.0, 0.0]),
        }
    }

    /// The local unitary matrix of the gate.
    ///
    /// Operand 0 is the least-significant bit of the basis index, so for a
    /// controlled gate (control = operand 0) the matrix is
    /// `Σ_c |c⟩⟨c| ⊗ U^c` with the control in the low bit.
    pub fn matrix(&self) -> Matrix {
        use Gate::*;
        let i = Complex::I;
        match self {
            H => Matrix::hadamard(),
            X => qt_math::pauli::x2(),
            Y => qt_math::pauli::y2(),
            Z => qt_math::pauli::z2(),
            S => Matrix::mat2(Complex::ONE, Complex::ZERO, Complex::ZERO, i),
            Sdg => Matrix::mat2(Complex::ONE, Complex::ZERO, Complex::ZERO, -i),
            T => Matrix::mat2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_phase(std::f64::consts::FRAC_PI_4),
            ),
            Tdg => Matrix::mat2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_phase(-std::f64::consts::FRAC_PI_4),
            ),
            Sx => {
                let a = Complex::new(0.5, 0.5);
                let b = Complex::new(0.5, -0.5);
                Matrix::mat2(a, b, b, a)
            }
            Rx(th) => {
                let c = Complex::real((th / 2.0).cos());
                let s = Complex::imag(-(th / 2.0).sin());
                Matrix::mat2(c, s, s, c)
            }
            Ry(th) => {
                let c = Complex::real((th / 2.0).cos());
                let s = Complex::real((th / 2.0).sin());
                Matrix::mat2(c, -s, s, c)
            }
            Rz(th) => Matrix::mat2(
                Complex::from_phase(-th / 2.0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_phase(th / 2.0),
            ),
            Phase(th) => Matrix::mat2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_phase(*th),
            ),
            U(th, phi, lam) => {
                let c = (th / 2.0).cos();
                let s = (th / 2.0).sin();
                Matrix::mat2(
                    Complex::real(c),
                    -Complex::from_phase(*lam) * s,
                    Complex::from_phase(*phi) * s,
                    Complex::from_phase(*phi + *lam) * c,
                )
            }
            Cx => controlled(&qt_math::pauli::x2()),
            Cy => controlled(&qt_math::pauli::y2()),
            Cz => controlled(&qt_math::pauli::z2()),
            Cp(th) => controlled(&Gate::Phase(*th).matrix()),
            Crz(th) => controlled(&Gate::Rz(*th).matrix()),
            Crx(th) => controlled(&Gate::Rx(*th).matrix()),
            Cry(th) => controlled(&Gate::Ry(*th).matrix()),
            Swap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = Complex::ONE;
                m[(1, 2)] = Complex::ONE;
                m[(2, 1)] = Complex::ONE;
                m[(3, 3)] = Complex::ONE;
                m
            }
            Ccp(th) => {
                let mut m = Matrix::identity(8);
                m[(7, 7)] = Complex::from_phase(*th);
                m
            }
        }
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        use Gate::*;
        match self {
            H | X | Y | Z | Cx | Cy | Cz | Swap => self.clone(),
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => U(
                std::f64::consts::FRAC_PI_2,
                -std::f64::consts::FRAC_PI_2 - std::f64::consts::PI,
                std::f64::consts::FRAC_PI_2 + std::f64::consts::PI,
            ),
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(t) => Phase(-t),
            U(t, p, l) => U(-t, -l, -p),
            Cp(t) => Cp(-t),
            Crz(t) => Crz(-t),
            Crx(t) => Crx(-t),
            Cry(t) => Cry(-t),
            Ccp(t) => Ccp(-t),
        }
    }

    /// Whether the gate's matrix is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            Z | S | Sdg | T | Tdg | Rz(_) | Phase(_) | Cz | Cp(_) | Crz(_) | Ccp(_)
        )
    }

    /// The structural class of the gate's matrix (see [`GateStructure`]).
    ///
    /// Simulator kernels use this to dispatch to specialized application
    /// routines (phase multiplication, permutation, butterfly) instead of a
    /// generic dense matrix product.
    pub fn structure(&self) -> GateStructure {
        use Gate::*;
        match self {
            Z | S | Sdg | T | Tdg | Phase(_) | Cz | Cp(_) | Ccp(_) => {
                GateStructure::ControlledPhase
            }
            Rz(_) | Crz(_) => GateStructure::Diagonal,
            X | Y | Cx | Cy | Swap => GateStructure::Permutation,
            H | Sx | Rx(_) | Ry(_) | U(..) => GateStructure::SingleQubitDense,
            Crx(_) | Cry(_) => GateStructure::ControlledDense,
        }
    }

    /// Whether this is a two-qubit (or larger) entangling gate for the
    /// purposes of 2-qubit basis gate counting.
    pub fn is_multi_qubit(&self) -> bool {
        self.n_qubits() > 1
    }

    /// The Clifford class of the gate **up to global phase**, or `None` for
    /// gates outside the (recognized) Clifford group.
    ///
    /// Parametric rotations (`Rx`/`Ry`/`Rz`/`Phase`) snap to quarter turns
    /// within `1e-12` radians; `Cp` is recognized at `0` (identity) and `π`
    /// (`Cz`). Recognition is deliberately conservative: variants whose
    /// Clifford corners never appear in practice (`U`, `T`, controlled
    /// rotations, `Ccp`) always return `None` and fall back to dense
    /// simulation.
    pub fn clifford_class(&self) -> Option<CliffordGate> {
        use Gate::*;
        Some(match self {
            H => CliffordGate::H,
            X => CliffordGate::X,
            Y => CliffordGate::Y,
            Z => CliffordGate::Z,
            S => CliffordGate::S,
            Sdg => CliffordGate::Sdg,
            Sx => CliffordGate::Sx,
            Cx => CliffordGate::Cx,
            Cy => CliffordGate::Cy,
            Cz => CliffordGate::Cz,
            Swap => CliffordGate::Swap,
            Rx(t) => match quarter_turns(*t)? {
                0 => CliffordGate::I,
                1 => CliffordGate::Sx,
                2 => CliffordGate::X,
                _ => CliffordGate::Sxdg,
            },
            Ry(t) => match quarter_turns(*t)? {
                0 => CliffordGate::I,
                1 => CliffordGate::Sy,
                2 => CliffordGate::Y,
                _ => CliffordGate::Sydg,
            },
            Rz(t) | Phase(t) => match quarter_turns(*t)? {
                0 => CliffordGate::I,
                1 => CliffordGate::S,
                2 => CliffordGate::Z,
                _ => CliffordGate::Sdg,
            },
            Cp(t) => match quarter_turns(*t)? {
                0 => CliffordGate::I,
                2 => CliffordGate::Cz,
                _ => return None,
            },
            T | Tdg | U(..) | Crz(_) | Crx(_) | Cry(_) | Ccp(_) => return None,
        })
    }

    /// Whether [`Gate::clifford_class`] recognizes the gate as Clifford.
    pub fn is_clifford(&self) -> bool {
        self.clifford_class().is_some()
    }
}

/// The number of quarter turns (`θ / (π/2)` mod 4) when `θ` is a multiple of
/// `π/2` within `1e-12` radians, else `None`.
fn quarter_turns(theta: f64) -> Option<u8> {
    let k = theta / std::f64::consts::FRAC_PI_2;
    let r = k.round();
    // The comparison is deliberately "< tolerance" (not ">= rejects") so a
    // NaN angle falls through to None.
    if (k - r).abs() * std::f64::consts::FRAC_PI_2 < 1e-12 {
        Some(r.rem_euclid(4.0) as u8)
    } else {
        None
    }
}

/// Builds the controlled version of a single-qubit unitary, with the control
/// as operand 0 (least-significant bit).
pub fn controlled(u: &Matrix) -> Matrix {
    assert_eq!(u.rows(), 2, "controlled() expects a single-qubit unitary");
    let mut m = Matrix::identity(4);
    // Indices with control bit (bit 0) set: 1 (t=0) and 3 (t=1).
    m[(1, 1)] = u[(0, 0)];
    m[(1, 3)] = u[(0, 1)];
    m[(3, 1)] = u[(1, 0)];
    m[(3, 3)] = u[(1, 1)];
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_test_gates() -> Vec<Gate> {
        use Gate::*;
        vec![
            H,
            X,
            Y,
            Z,
            S,
            Sdg,
            T,
            Tdg,
            Sx,
            Rx(0.3),
            Ry(-1.2),
            Rz(2.5),
            Phase(0.7),
            U(0.4, 1.1, -0.6),
            Cx,
            Cy,
            Cz,
            Cp(0.9),
            Crz(1.3),
            Crx(-0.8),
            Cry(0.2),
            Swap,
            Ccp(0.55),
        ]
    }

    #[test]
    fn all_gates_are_unitary() {
        for g in all_test_gates() {
            assert!(g.matrix().is_unitary(1e-10), "{} is not unitary", g.name());
        }
    }

    #[test]
    fn inverses_compose_to_identity() {
        for g in all_test_gates() {
            let m = g.matrix();
            let mi = g.inverse().matrix();
            let n = m.rows();
            assert!(
                mi.mul(&m)
                    .approx_eq_up_to_phase(&Matrix::identity(n), 1e-10),
                "inverse of {} is wrong",
                g.name()
            );
        }
    }

    #[test]
    fn diagonal_flag_matches_matrix() {
        for g in all_test_gates() {
            let m = g.matrix();
            let mut diag = true;
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    if r != c && m[(r, c)].norm() > 1e-12 {
                        diag = false;
                    }
                }
            }
            assert_eq!(
                diag,
                g.is_diagonal(),
                "diagonal flag wrong for {}",
                g.name()
            );
        }
    }

    #[test]
    fn structure_matches_matrix_shape() {
        for g in all_test_gates() {
            let m = g.matrix();
            let d = m.rows();
            let nonzero = |r: usize, c: usize| m[(r, c)].norm() > 1e-12;
            match g.structure() {
                GateStructure::ControlledPhase => {
                    for r in 0..d {
                        for c in 0..d {
                            if r != c {
                                assert!(!nonzero(r, c), "{} not diagonal", g.name());
                            } else if r < d - 1 {
                                assert!(
                                    m[(r, r)].approx_eq(Complex::ONE, 1e-12),
                                    "{} leading diagonal not 1",
                                    g.name()
                                );
                            }
                        }
                    }
                }
                GateStructure::Diagonal => {
                    for r in 0..d {
                        for c in 0..d {
                            if r != c {
                                assert!(!nonzero(r, c), "{} not diagonal", g.name());
                            }
                        }
                    }
                }
                GateStructure::Permutation => {
                    for c in 0..d {
                        let hits = (0..d).filter(|&r| nonzero(r, c)).count();
                        assert_eq!(hits, 1, "{} column {c} not monomial", g.name());
                    }
                    for r in 0..d {
                        let hits = (0..d).filter(|&c| nonzero(r, c)).count();
                        assert_eq!(hits, 1, "{} row {r} not monomial", g.name());
                    }
                }
                GateStructure::SingleQubitDense => assert_eq!(d, 2),
                GateStructure::ControlledDense => {
                    assert_eq!(d, 4);
                    // Identity on control=0 (local indices 0 and 2).
                    assert!(m[(0, 0)].approx_eq(Complex::ONE, 1e-12));
                    assert!(m[(2, 2)].approx_eq(Complex::ONE, 1e-12));
                    for &(r, c) in &[(0, 1), (0, 2), (0, 3), (2, 0), (2, 1), (2, 3)] {
                        assert!(!nonzero(r, c), "{} couples control=0", g.name());
                    }
                }
                GateStructure::Dense => {}
            }
        }
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let m = Gate::Cx.matrix();
        // Input |c=1, t=0⟩ = index 1 → output |c=1, t=1⟩ = index 3.
        assert!(m[(3, 1)].approx_eq(Complex::ONE, 1e-15));
        assert!(m[(1, 1)].approx_eq(Complex::ZERO, 1e-15));
        // Input |c=0, t=1⟩ = index 2 stays.
        assert!(m[(2, 2)].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::Sx.matrix();
        assert!(sx.mul(&sx).approx_eq_up_to_phase(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn rz_is_phase_up_to_global_phase() {
        let rz = Gate::Rz(0.7).matrix();
        let p = Gate::Phase(0.7).matrix();
        assert!(rz.approx_eq_up_to_phase(&p, 1e-12));
    }

    #[test]
    fn u_reproduces_named_gates() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let h = Gate::U(FRAC_PI_2, 0.0, PI).matrix();
        assert!(h.approx_eq_up_to_phase(&Gate::H.matrix(), 1e-12));
        let x = Gate::U(PI, 0.0, PI).matrix();
        assert!(x.approx_eq_up_to_phase(&Gate::X.matrix(), 1e-12));
    }

    /// The canonical matrix of a [`CliffordGate`] at the given arity, built
    /// from the base gate set (`Sy = H·Z`, `Sydg = Z·H`, `Sxdg = Sx†`).
    fn clifford_matrix(c: CliffordGate, arity: usize) -> Matrix {
        use CliffordGate as C;
        match c {
            C::I => Matrix::identity(1 << arity),
            C::X => Gate::X.matrix(),
            C::Y => Gate::Y.matrix(),
            C::Z => Gate::Z.matrix(),
            C::H => Gate::H.matrix(),
            C::S => Gate::S.matrix(),
            C::Sdg => Gate::Sdg.matrix(),
            C::Sx => Gate::Sx.matrix(),
            C::Sxdg => Gate::Sx.inverse().matrix(),
            C::Sy => Gate::H.matrix().mul(&Gate::Z.matrix()),
            C::Sydg => Gate::Z.matrix().mul(&Gate::H.matrix()),
            C::Cx => Gate::Cx.matrix(),
            C::Cy => Gate::Cy.matrix(),
            C::Cz => Gate::Cz.matrix(),
            C::Swap => Gate::Swap.matrix(),
        }
    }

    #[test]
    fn clifford_class_matches_matrix_up_to_phase() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let cliffords = [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::Sx,
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Swap,
            Gate::Rx(0.0),
            Gate::Rx(FRAC_PI_2),
            Gate::Rx(PI),
            Gate::Rx(-FRAC_PI_2),
            Gate::Rx(5.0 * FRAC_PI_2),
            Gate::Ry(FRAC_PI_2),
            Gate::Ry(PI),
            Gate::Ry(-FRAC_PI_2),
            Gate::Rz(FRAC_PI_2),
            Gate::Rz(PI),
            Gate::Rz(-FRAC_PI_2),
            Gate::Phase(FRAC_PI_2),
            Gate::Phase(PI),
            Gate::Phase(-FRAC_PI_2),
            Gate::Cp(0.0),
            Gate::Cp(PI),
            Gate::Cp(-PI),
        ];
        for g in &cliffords {
            let class = g
                .clifford_class()
                .unwrap_or_else(|| panic!("{} should be Clifford", g.name()));
            assert!(
                g.matrix()
                    .approx_eq_up_to_phase(&clifford_matrix(class, g.n_qubits()), 1e-10),
                "{:?} mapped to wrong Clifford class {:?}",
                g,
                class
            );
        }
    }

    #[test]
    fn sy_is_ry_half_pi_exactly() {
        // `Ry(π/2) = H·Z` with no global phase — the identity behind Sy.
        use std::f64::consts::FRAC_PI_2;
        let ry = Gate::Ry(FRAC_PI_2).matrix();
        let hz = Gate::H.matrix().mul(&Gate::Z.matrix());
        for r in 0..2 {
            for c in 0..2 {
                assert!(ry[(r, c)].approx_eq(hz[(r, c)], 1e-15));
            }
        }
    }

    #[test]
    fn non_clifford_gates_are_rejected() {
        use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
        for g in [
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.3),
            Gate::Ry(FRAC_PI_4),
            Gate::Rz(1.0),
            Gate::Phase(0.2),
            Gate::Cp(FRAC_PI_2),
            Gate::U(FRAC_PI_2, 0.0, std::f64::consts::PI),
            Gate::Crz(std::f64::consts::PI),
            Gate::Crx(FRAC_PI_2),
            Gate::Cry(FRAC_PI_2),
            Gate::Ccp(std::f64::consts::PI),
        ] {
            assert!(!g.is_clifford(), "{:?} wrongly classified Clifford", g);
        }
    }

    #[test]
    fn ccp_phases_only_all_ones() {
        let m = Gate::Ccp(1.0).matrix();
        for k in 0..7 {
            assert!(m[(k, k)].approx_eq(Complex::ONE, 1e-15));
        }
        assert!(m[(7, 7)].approx_eq(Complex::from_phase(1.0), 1e-15));
    }
}
