//! Preparation and basis-rotation helpers.
//!
//! The QSPC and wire-cut protocols prepare single-qubit Pauli eigenstates and
//! measure in Pauli bases. These helpers produce the corresponding gate
//! sequences (all single-qubit, as the paper's cost analysis requires).

use crate::circuit::Instruction;
use crate::gate::Gate;
use qt_math::states::PrepState;
use qt_math::Pauli;

/// Gates preparing `state` on qubit `q` starting from `|0⟩`.
pub fn prepare(state: PrepState, q: usize) -> Vec<Instruction> {
    let gates: &[Gate] = match state {
        PrepState::Zero => &[],
        PrepState::One => &[Gate::X],
        PrepState::Plus => &[Gate::H],
        PrepState::Minus => &[Gate::X, Gate::H],
        PrepState::PlusI => &[Gate::H, Gate::S],
        PrepState::MinusI => &[Gate::X, Gate::H, Gate::S],
    };
    gates
        .iter()
        .map(|g| Instruction::new(g.clone(), vec![q]))
        .collect()
}

/// Gates rotating the `basis` eigenbasis to the computational basis on `q`,
/// so that a terminal Z measurement realizes a `basis` measurement.
///
/// Measuring `I` needs no rotation (and its outcome is a constant `+1`).
pub fn measure_rotation(basis: Pauli, q: usize) -> Vec<Instruction> {
    let gates: &[Gate] = match basis {
        Pauli::I | Pauli::Z => &[],
        Pauli::X => &[Gate::H],
        Pauli::Y => &[Gate::Sdg, Gate::H],
    };
    gates
        .iter()
        .map(|g| Instruction::new(g.clone(), vec![q]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use qt_math::{Complex, Matrix};

    #[test]
    fn preparation_produces_the_right_state() {
        for s in PrepState::ALL {
            let mut c = Circuit::new(1);
            for i in prepare(s, 0) {
                c.push_instruction(i);
            }
            let u = c.unitary();
            let got = [u[(0, 0)], u[(1, 0)]];
            let want = s.ket();
            // Compare projectors to ignore global phase.
            let proj = |k: &[Complex; 2]| {
                Matrix::mat2(
                    k[0] * k[0].conj(),
                    k[0] * k[1].conj(),
                    k[1] * k[0].conj(),
                    k[1] * k[1].conj(),
                )
            };
            assert!(
                proj(&got).approx_eq(&proj(&want), 1e-12),
                "wrong preparation for {s}"
            );
        }
    }

    #[test]
    fn rotation_maps_eigenbasis_to_computational() {
        for basis in [Pauli::X, Pauli::Y, Pauli::Z] {
            let mut c = Circuit::new(1);
            for i in measure_rotation(basis, 0) {
                c.push_instruction(i);
            }
            let u = c.unitary();
            let [(_, vplus), (_, vminus)] = basis.eigenbasis();
            // The +1 eigenvector must map to |0⟩ (up to phase), −1 to |1⟩.
            let out_plus = u.mul_vec(&vplus);
            let out_minus = u.mul_vec(&vminus);
            assert!(out_plus[1].norm() < 1e-12, "{basis}: +1 → not |0⟩");
            assert!(out_minus[0].norm() < 1e-12, "{basis}: −1 → not |1⟩");
        }
    }

    #[test]
    fn prepare_uses_only_single_qubit_gates() {
        for s in PrepState::ALL {
            for i in prepare(s, 3) {
                assert_eq!(i.qubits, vec![3]);
                assert_eq!(i.gate.n_qubits(), 1);
            }
        }
    }
}
