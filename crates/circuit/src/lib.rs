//! Quantum circuit IR and analysis passes for the QuTracer reproduction.
//!
//! The crate provides:
//! * [`Gate`] — the gate set used by every benchmark and mitigation circuit;
//! * [`Circuit`] — an ordered instruction list with builder methods and layer
//!   boundaries (candidate cut points);
//! * [`commute`] — exact block-diagonality/commutation predicates;
//! * [`passes`] — QuTracer's circuit optimizations (false dependency removal,
//!   gate bypassing, subset segmentation for cut placement);
//! * [`basis`] — Pauli-eigenstate preparation and basis-rotation helpers.
//!
//! # Example
//!
//! ```
//! use qt_circuit::{Circuit, passes};
//!
//! let mut c = Circuit::new(3);
//! c.h(2).cp(2, 1, 0.5).h(1).cp(1, 0, 0.5).h(0);
//! // Tracing qubit 2: only its own H survives the reduction.
//! let red = passes::reduce_for_z_measurement(&c, &[2]);
//! assert_eq!(red.circuit.len(), 1);
//! ```

pub mod basis;
pub mod circuit;
pub mod commute;
pub mod gate;
pub mod passes;

pub use circuit::{embed, Circuit, Instruction};
pub use gate::{CliffordGate, Gate, GateStructure};
