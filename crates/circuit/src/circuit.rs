//! The circuit IR: instructions, the circuit container and its builder API.

use crate::gate::Gate;
use qt_math::{Complex, Matrix};
use std::collections::BTreeMap;
use std::fmt;

/// A gate applied to specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits; for controlled gates the control comes first.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, validating the operand count.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or if
    /// operands repeat.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            gate.n_qubits(),
            qubits.len(),
            "gate {} expects {} operands, got {}",
            gate.name(),
            gate.n_qubits(),
            qubits.len()
        );
        for (i, a) in qubits.iter().enumerate() {
            for b in &qubits[i + 1..] {
                assert_ne!(a, b, "repeated operand {a} in {}", gate.name());
            }
        }
        Instruction { gate, qubits }
    }

    /// Whether the instruction touches qubit `q`.
    pub fn acts_on(&self, q: usize) -> bool {
        self.qubits.contains(&q)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.gate.name(), self.qubits)
    }
}

/// A quantum circuit: a qubit count and an ordered list of instructions.
///
/// Circuits carry optional *layer boundaries* — indices into the instruction
/// list marking algorithmic layers (e.g. one VQE entangling block, one QAOA
/// step). QuTracer uses the boundaries as candidate cut locations.
///
/// # Example
///
/// ```
/// use qt_circuit::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    instrs: Vec<Instruction>,
    layer_bounds: Vec<usize>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            instrs: Vec::new(),
            layer_bounds: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range.
    pub fn push(&mut self, gate: Gate, qubits: Vec<usize>) -> &mut Self {
        for &q in &qubits {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.n_qubits
            );
        }
        self.instrs.push(Instruction::new(gate, qubits));
        self
    }

    /// Appends a pre-built instruction.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range.
    pub fn push_instruction(&mut self, instr: Instruction) -> &mut Self {
        let Instruction { gate, qubits } = instr;
        self.push(gate, qubits)
    }

    /// Records a layer boundary at the current end of the circuit.
    ///
    /// Consecutive duplicate boundaries are coalesced.
    pub fn mark_layer(&mut self) -> &mut Self {
        let pos = self.instrs.len();
        if self.layer_bounds.last() != Some(&pos) {
            self.layer_bounds.push(pos);
        }
        self
    }

    /// Layer boundaries (positions in the instruction list).
    pub fn layer_bounds(&self) -> &[usize] {
        &self.layer_bounds
    }

    // ------------------------------------------------------------------
    // Builder shorthands.
    // ------------------------------------------------------------------

    /// Applies a Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, vec![q])
    }
    /// Applies Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, vec![q])
    }
    /// Applies Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, vec![q])
    }
    /// Applies Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, vec![q])
    }
    /// Applies the phase gate S on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S, vec![q])
    }
    /// Applies S† on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg, vec![q])
    }
    /// Applies the T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, vec![q])
    }
    /// Applies T† on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Tdg, vec![q])
    }
    /// Applies √X on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sx, vec![q])
    }
    /// Applies `Rx(theta)` on `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(theta), vec![q])
    }
    /// Applies `Ry(theta)` on `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(theta), vec![q])
    }
    /// Applies `Rz(theta)` on `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(theta), vec![q])
    }
    /// Applies the phase gate `P(theta)` on `q`.
    pub fn p(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Phase(theta), vec![q])
    }
    /// Applies `U(theta, phi, lambda)` on `q`.
    pub fn u(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) -> &mut Self {
        self.push(Gate::U(theta, phi, lambda), vec![q])
    }
    /// Applies CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx, vec![control, target])
    }
    /// Applies controlled-Y.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cy, vec![control, target])
    }
    /// Applies controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz, vec![a, b])
    }
    /// Applies a controlled phase.
    pub fn cp(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Cp(theta), vec![a, b])
    }
    /// Applies controlled-`Rz`.
    pub fn crz(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Gate::Crz(theta), vec![control, target])
    }
    /// Applies controlled-`Rx`.
    pub fn crx(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Gate::Crx(theta), vec![control, target])
    }
    /// Applies controlled-`Ry`.
    pub fn cry(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Gate::Cry(theta), vec![control, target])
    }
    /// Applies SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, vec![a, b])
    }
    /// Applies a doubly-controlled phase.
    pub fn ccp(&mut self, a: usize, b: usize, c: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ccp(theta), vec![a, b, c])
    }

    // ------------------------------------------------------------------
    // Whole-circuit operations.
    // ------------------------------------------------------------------

    /// Appends all instructions (and layer bounds, shifted) of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.n_qubits,
            self.n_qubits
        );
        let off = self.instrs.len();
        for b in &other.layer_bounds {
            let pos = off + b;
            if self.layer_bounds.last() != Some(&pos) {
                self.layer_bounds.push(pos);
            }
        }
        self.instrs.extend(other.instrs.iter().cloned());
        self
    }

    /// The inverse circuit (reversed order, inverted gates).
    ///
    /// Layer boundaries are dropped.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for instr in self.instrs.iter().rev() {
            inv.push(instr.gate.inverse(), instr.qubits.clone());
        }
        inv
    }

    /// Re-targets every instruction through `map` (old qubit → new qubit)
    /// onto a circuit with `new_n` qubits. Layer bounds are preserved.
    ///
    /// # Panics
    ///
    /// Panics if a mapped qubit is out of range.
    pub fn remap(&self, map: &[usize], new_n: usize) -> Circuit {
        let mut out = Circuit::new(new_n);
        let mut bounds = self.layer_bounds.iter().peekable();
        for (i, instr) in self.instrs.iter().enumerate() {
            while bounds.peek() == Some(&&i) {
                out.mark_layer();
                bounds.next();
            }
            let qs = instr.qubits.iter().map(|&q| map[q]).collect();
            out.push(instr.gate.clone(), qs);
        }
        while bounds.next().is_some() {
            out.mark_layer();
        }
        out
    }

    /// Per-gate-name instruction counts.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for instr in &self.instrs {
            *counts.entry(instr.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of instructions acting on two or more qubits.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| i.gate.is_multi_qubit())
            .count()
    }

    /// Circuit depth (longest chain of instructions per qubit).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for instr in &self.instrs {
            let level = instr.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for &q in &instr.qubits {
                frontier[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// The set of qubits touched by at least one instruction.
    pub fn used_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.n_qubits];
        for instr in &self.instrs {
            for &q in &instr.qubits {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(q, _)| q)
            .collect()
    }

    /// The full `2^n × 2^n` unitary of the circuit.
    ///
    /// Intended for testing and for small fragments (the subset circuits in
    /// QuTracer are 1–3 qubits).
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 12` (the matrix would be too large).
    pub fn unitary(&self) -> Matrix {
        assert!(
            self.n_qubits <= 12,
            "unitary() is only for small circuits ({} qubits requested)",
            self.n_qubits
        );
        let dim = 1usize << self.n_qubits;
        let mut u = Matrix::identity(dim);
        for instr in &self.instrs {
            let g = embed(&instr.gate.matrix(), &instr.qubits, self.n_qubits);
            u = g.mul(&u);
        }
        u
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n_qubits)?;
        for (i, instr) in self.instrs.iter().enumerate() {
            if self.layer_bounds.contains(&i) {
                writeln!(f, "  --- layer ---")?;
            }
            writeln!(f, "  {instr}")?;
        }
        Ok(())
    }
}

/// Embeds a `2^k × 2^k` gate matrix acting on `qubits` into the full
/// `2^n × 2^n` space. Qubit 0 is the least-significant index bit; operand
/// `qubits[0]` corresponds to the least-significant bit of the local index.
///
/// Intended for testing and small registers.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or `n > 12`.
pub fn embed(gate: &Matrix, qubits: &[usize], n: usize) -> Matrix {
    assert!(n <= 12, "embed() is only for small registers");
    let k = qubits.len();
    assert_eq!(gate.rows(), 1 << k, "gate matrix does not match arity");
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        // Local index of this basis state.
        let mut local = 0usize;
        for (pos, &q) in qubits.iter().enumerate() {
            if (col >> q) & 1 == 1 {
                local |= 1 << pos;
            }
        }
        // Bits outside the gate's support stay fixed.
        let mut base = col;
        for &q in qubits {
            base &= !(1usize << q);
        }
        for lrow in 0..(1 << k) {
            let amp = gate[(lrow, local)];
            if amp == Complex::ZERO {
                continue;
            }
            let mut row = base;
            for (pos, &q) in qubits.iter().enumerate() {
                if (lrow >> pos) & 1 == 1 {
                    row |= 1 << q;
                }
            }
            out[(row, col)] += amp;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_in_order() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.5);
        assert_eq!(c.len(), 3);
        assert_eq!(c.instructions()[1].gate, Gate::Cx);
        assert_eq!(c.instructions()[1].qubits, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    #[should_panic(expected = "repeated operand")]
    fn push_rejects_repeated_operands() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.7).ry(0, -0.3);
        let mut full = c.clone();
        full.append(&c.inverse());
        assert!(full
            .unitary()
            .approx_eq_up_to_phase(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn unitary_of_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = c.unitary();
        // |00⟩ → (|00⟩ + |11⟩)/√2
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u[(0, 0)].approx_eq(Complex::real(s), 1e-12));
        assert!(u[(3, 0)].approx_eq(Complex::real(s), 1e-12));
        assert!(u[(1, 0)].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn embed_acts_on_correct_qubit() {
        // X on qubit 1 of 2: |00⟩ → |10⟩ (index 0 → 2).
        let m = embed(&Gate::X.matrix(), &[1], 2);
        assert!(m[(2, 0)].approx_eq(Complex::ONE, 1e-15));
        assert!(m[(0, 2)].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn embed_respects_operand_order() {
        // CX with control=1, target=0 on 2 qubits: |10⟩ (idx 2) → |11⟩ (idx 3).
        let m = embed(&Gate::Cx.matrix(), &[1, 0], 2);
        assert!(m[(3, 2)].approx_eq(Complex::ONE, 1e-15));
        // |01⟩ (idx 1: control=0) unchanged.
        assert!(m[(1, 1)].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn depth_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).cx(1, 2).rz(2, 1.0);
        assert_eq!(c.depth(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.gate_counts()["h"], 2);
    }

    #[test]
    fn layer_marks_survive_append_and_remap() {
        let mut a = Circuit::new(2);
        a.h(0).mark_layer().cx(0, 1).mark_layer();
        let mut b = Circuit::new(2);
        b.x(1);
        let mut c = Circuit::new(2);
        c.append(&b).append(&a);
        assert_eq!(c.layer_bounds(), &[2, 3]);

        let remapped = a.remap(&[1, 0], 2);
        assert_eq!(remapped.layer_bounds(), &[1, 2]);
        assert_eq!(remapped.instructions()[0].qubits, vec![1]);
        assert_eq!(remapped.instructions()[1].qubits, vec![1, 0]);
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut swaps = Circuit::new(2);
        swaps.swap(0, 1);
        let mut cnots = Circuit::new(2);
        cnots.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(swaps.unitary().approx_eq(&cnots.unitary(), 1e-12));
    }

    #[test]
    fn used_qubits_reports_support() {
        let mut c = Circuit::new(4);
        c.h(1).cx(1, 3);
        assert_eq!(c.used_qubits(), vec![1, 3]);
    }
}
