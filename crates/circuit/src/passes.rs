//! Circuit analysis passes implementing QuTracer's optimizations.
//!
//! * [`reduce_for_z_measurement`] — *false dependency removal* and *gate
//!   bypassing* (Sec. V-B of the paper): drops every gate that cannot affect
//!   the Z-basis statistics of the measured qubits, using exact
//!   block-diagonality instead of syntactic dependency.
//! * [`split_into_segments`] — cut placement: partitions a circuit, relative
//!   to a traced qubit subset, into alternating *local* blocks (subset-only
//!   gates, classically simulable — *localized gate simulation*) and *check
//!   segments* (operations commuting with `Z` on the subset, protectable by
//!   a qubit-subsetting Pauli check).

use crate::circuit::{Circuit, Instruction};
use crate::commute::block_diagonal_on_subset;

/// Result of [`reduce_for_z_measurement`].
#[derive(Debug, Clone)]
pub struct ReducedCircuit {
    /// The reduced circuit (same qubit count, fewer instructions).
    pub circuit: Circuit,
    /// Indices (into the original instruction list) of the kept gates.
    pub kept: Vec<usize>,
    /// Qubits whose initial state can influence the measurement.
    pub active_qubits: Vec<usize>,
}

/// Removes every instruction that provably does not affect the joint Z-basis
/// measurement distribution of `targets`.
///
/// Walks the circuit backwards maintaining the Heisenberg-picture structure
/// of the measurement observable:
///
/// * `A` — *active* qubits: the observable's support (initially `targets`);
/// * `D ⊆ A` — *diagonal* qubits: qubits on which the evolved observable is
///   still a sum of computational-basis projectors (initially all of `A`).
///
/// For each instruction `G` with operand set `Q` (from the end):
///
/// 1. `Q ∩ A = ∅` — causally irrelevant, **drop**;
/// 2. `Q ∩ (A \ D) = ∅` and `G` block-diagonal on `Q ∩ D` — `G` conjugates
///    the computational projectors on `Q ∩ D` to themselves, **drop**
///    (*gate bypassing*: `Rz`/phase gates before measurement, controlled
///    gates whose control is the measured qubit);
/// 3. `G` commutes with every *kept* instruction after it and is
///    block-diagonal on `Q ∩ targets` — `G` can be shifted to the end of the
///    circuit where it cannot influence the terminal Z measurement, **drop**
///    (*false dependency removal*: the paper's controlled-U/controlled-U²
///    example in Sec. V-B);
/// 4. otherwise **keep**: `A ← A ∪ Q`; if `Q ∩ (A \ D) = ∅` and `G` is a
///    generalized permutation of the computational basis (X, CX, SWAP, …)
///    the observable stays diagonal (`D ← D ∪ Q`), else `D ← D \ Q`.
pub fn reduce_for_z_measurement(circ: &Circuit, targets: &[usize]) -> ReducedCircuit {
    let n = circ.n_qubits();
    let mut active = vec![false; n];
    let mut diagonal = vec![false; n];
    let mut is_target = vec![false; n];
    for &t in targets {
        active[t] = true;
        diagonal[t] = true;
        is_target[t] = true;
    }
    let mut kept_rev: Vec<usize> = Vec::new();
    let instrs = circ.instructions();
    for (idx, instr) in instrs.iter().enumerate().rev() {
        let touched_active: Vec<usize> = instr
            .qubits
            .iter()
            .copied()
            .filter(|&q| active[q])
            .collect();
        // Rule 1: outside the causal cone.
        if touched_active.is_empty() {
            continue;
        }
        let touches_nondiag = instr.qubits.iter().any(|&q| active[q] && !diagonal[q]);
        let touched_diag: Vec<usize> = instr
            .qubits
            .iter()
            .copied()
            .filter(|&q| active[q] && diagonal[q])
            .collect();
        // Rule 2: gate bypassing against the diagonal frontier.
        if !touches_nondiag && block_diagonal_on_subset(instr, &touched_diag) {
            continue;
        }
        // Rule 3: commute past every kept gate, then check against the
        // terminal Z measurement only.
        let touched_targets: Vec<usize> = instr
            .qubits
            .iter()
            .copied()
            .filter(|&q| is_target[q])
            .collect();
        if block_diagonal_on_subset(instr, &touched_targets)
            && kept_rev
                .iter()
                .all(|&k| crate::commute::instructions_commute(instr, &instrs[k]))
        {
            continue;
        }
        // Rule 4: keep.
        kept_rev.push(idx);
        let permutation = !touches_nondiag && is_generalized_permutation(&instr.gate.matrix());
        for &q in &instr.qubits {
            active[q] = true;
            diagonal[q] = permutation;
        }
    }
    kept_rev.reverse();
    let mut circuit = Circuit::new(n);
    for &idx in &kept_rev {
        let instr = &instrs[idx];
        circuit.push(instr.gate.clone(), instr.qubits.clone());
    }
    let active_qubits = active
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .map(|(q, _)| q)
        .collect();
    ReducedCircuit {
        circuit,
        kept: kept_rev,
        active_qubits,
    }
}

/// Conservative causal cone for *state preparation*: keeps every gate that
/// can influence the reduced density matrix on `targets` (not just its
/// Z-basis diagonal — coherences matter here, so no block-diagonal
/// dropping is applied).
///
/// Used to prune the noisy prefix of a QSPC ensemble circuit: the traced
/// qubit's wire is replaced at the cut, so only the prefix gates in the cone
/// of the *other* active qubits survive.
pub fn reduce_for_state_preparation(circ: &Circuit, targets: &[usize]) -> ReducedCircuit {
    let n = circ.n_qubits();
    let mut active = vec![false; n];
    for &t in targets {
        active[t] = true;
    }
    let mut kept_rev = Vec::new();
    for (idx, instr) in circ.instructions().iter().enumerate().rev() {
        if instr.qubits.iter().any(|&q| active[q]) {
            kept_rev.push(idx);
            for &q in &instr.qubits {
                active[q] = true;
            }
        }
    }
    kept_rev.reverse();
    let mut circuit = Circuit::new(n);
    for &idx in &kept_rev {
        let instr = &circ.instructions()[idx];
        circuit.push(instr.gate.clone(), instr.qubits.clone());
    }
    let active_qubits = active
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .map(|(q, _)| q)
        .collect();
    ReducedCircuit {
        circuit,
        kept: kept_rev,
        active_qubits,
    }
}

/// Whether `m` is a generalized permutation matrix (exactly one non-zero
/// entry per column): such gates map computational projectors to
/// computational projectors under conjugation.
fn is_generalized_permutation(m: &qt_math::Matrix) -> bool {
    for col in 0..m.cols() {
        let nonzero = (0..m.rows())
            .filter(|&row| m[(row, col)].norm() > 1e-12)
            .count();
        if nonzero != 1 {
            return false;
        }
    }
    true
}

/// One alternating block of the subset segmentation: subset-local gates
/// followed by a `Z`-commuting check segment.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    /// Gates acting **only** on the traced subset that do not commute with
    /// `Z` on it (basis changes: `H`, `Ry`, …). Simulated classically.
    pub local: Vec<Instruction>,
    /// Gates commuting with `Z` on every subset operand (plus any gate not
    /// touching the subset). Protected by a QSPC check.
    pub check: Vec<Instruction>,
}

impl Segment {
    /// Whether both halves are empty.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty() && self.check.is_empty()
    }

    /// Whether the check half contains at least one gate touching the subset.
    pub fn check_touches(&self, subset: &[usize]) -> bool {
        self.check
            .iter()
            .any(|i| i.qubits.iter().any(|q| subset.contains(q)))
    }
}

/// Error returned by [`split_into_segments`] when a gate couples the subset
/// to the rest in a way that no `Z` check can protect (e.g. a CX *target*
/// inside the subset).
#[derive(Debug, Clone, PartialEq)]
pub struct UnsupportedCoupling {
    /// Index of the offending instruction.
    pub index: usize,
    /// A rendering of the offending instruction.
    pub instruction: String,
}

impl std::fmt::Display for UnsupportedCoupling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instruction {} ({}) couples the subset non-diagonally",
            self.index, self.instruction
        )
    }
}

impl std::error::Error for UnsupportedCoupling {}

/// Partitions `circ` relative to the traced `subset` into alternating
/// local blocks and check segments (see module docs).
///
/// The concatenation `seg[0].local ++ seg[0].check ++ seg[1].local ++ …`
/// reproduces the original circuit up to reordering of provably commuting
/// instructions (gates not touching the subset may be hoisted past
/// subset-local gates, with which they trivially commute).
///
/// # Errors
///
/// Returns [`UnsupportedCoupling`] if a multi-qubit gate straddles the
/// subset boundary without being block-diagonal on the subset side.
pub fn split_into_segments(
    circ: &Circuit,
    subset: &[usize],
) -> Result<Vec<Segment>, UnsupportedCoupling> {
    let mut segments: Vec<Segment> = vec![Segment::default()];
    for (index, instr) in circ.instructions().iter().enumerate() {
        let on_subset: Vec<usize> = instr
            .qubits
            .iter()
            .copied()
            .filter(|q| subset.contains(q))
            .collect();
        let only_subset = on_subset.len() == instr.qubits.len();
        let current = segments.last_mut().expect("segments never empty");
        if on_subset.is_empty() {
            // Commutes with everything on the subset; goes to the check half.
            current.check.push(instr.clone());
        } else if block_diagonal_on_subset(instr, &on_subset) {
            current.check.push(instr.clone());
        } else if only_subset {
            // A subset-local basis change: starts a new segment unless the
            // current check half is still empty (then it joins its local
            // half directly).
            if current.check.is_empty() {
                current.local.push(instr.clone());
            } else {
                segments.push(Segment {
                    local: vec![instr.clone()],
                    check: Vec::new(),
                });
            }
        } else {
            return Err(UnsupportedCoupling {
                index,
                instruction: instr.to_string(),
            });
        }
    }
    segments.retain(|s| !s.is_empty());
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use qt_math::Matrix;

    /// iQFT-like 3-qubit circuit from the paper's motivating example.
    fn iqft3() -> Circuit {
        let mut c = Circuit::new(3);
        use std::f64::consts::FRAC_PI_2;
        c.h(2)
            .cp(2, 1, -FRAC_PI_2)
            .h(1)
            .cp(2, 0, -FRAC_PI_2 / 2.0)
            .cp(1, 0, -FRAC_PI_2)
            .h(0);
        c
    }

    #[test]
    fn reduction_drops_gates_after_measured_controls() {
        // Measuring only qubit 2 of the iQFT: everything except the first H
        // is either a CP (diagonal) or acts on other qubits.
        let c = iqft3();
        let red = reduce_for_z_measurement(&c, &[2]);
        assert_eq!(red.circuit.len(), 1);
        assert_eq!(red.circuit.instructions()[0].gate, Gate::H);
        assert_eq!(red.active_qubits, vec![2]);
    }

    #[test]
    fn reduction_keeps_real_dependencies() {
        // Measuring qubit 0: its H depends on the two CPs feeding it, which
        // depend on the H gates of qubits 1 and 2.
        let c = iqft3();
        let red = reduce_for_z_measurement(&c, &[0]);
        assert_eq!(red.circuit.len(), c.len());
        assert_eq!(red.active_qubits, vec![0, 1, 2]);
    }

    #[test]
    fn reduction_preserves_distribution() {
        // Brute-force check: the Z distribution of the target qubit is
        // unchanged by the reduction.
        let c = iqft3();
        for target in 0..3 {
            let red = reduce_for_z_measurement(&c, &[target]);
            let full = c.unitary();
            let reduced = red.circuit.unitary();
            // |ψ⟩ = U|000⟩ — compare marginal on `target`.
            let p = |u: &Matrix| {
                let mut p0 = 0.0;
                for row in 0..8 {
                    if (row >> target) & 1 == 0 {
                        p0 += u[(row, 0)].norm_sqr();
                    }
                }
                p0
            };
            assert!(
                (p(&full) - p(&reduced)).abs() < 1e-10,
                "marginal changed for qubit {target}"
            );
        }
    }

    #[test]
    fn rz_before_measurement_is_bypassed() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0, 1.234).z(0).s(0);
        let red = reduce_for_z_measurement(&c, &[0]);
        assert_eq!(red.circuit.len(), 1);
        assert_eq!(red.circuit.instructions()[0].gate, Gate::H);
    }

    #[test]
    fn segmentation_of_vqe_like_circuit() {
        // Ry layer; CZ layer; Ry layer — traced qubit 0.
        let mut c = Circuit::new(3);
        c.ry(0, 0.1).ry(1, 0.2).ry(2, 0.3);
        c.cz(0, 1).cz(1, 2);
        c.ry(0, 0.4).ry(1, 0.5).ry(2, 0.6);
        let segs = split_into_segments(&c, &[0]).unwrap();
        assert_eq!(segs.len(), 2);
        // Segment 0: local Ry(0), check [CZ(0,1), CZ(1,2), Ry(1), Ry(2)...]
        assert_eq!(segs[0].local.len(), 1);
        assert!(segs[0].check.len() >= 2);
        // Segment 1: local Ry(0) (final rotation), trailing Rys on others in check.
        assert_eq!(segs[1].local.len(), 1);
        assert!(!segs[1].check_touches(&[0]));
    }

    #[test]
    fn segmentation_rejects_cx_target_in_subset() {
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        let err = split_into_segments(&c, &[0]).unwrap_err();
        assert_eq!(err.index, 0);
    }

    #[test]
    fn segmentation_accepts_cx_control_in_subset() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let segs = split_into_segments(&c, &[0]).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].local.len(), 1); // first H
        assert_eq!(segs[0].check.len(), 1); // CX
        assert_eq!(segs[1].local.len(), 1); // last H
    }

    #[test]
    fn segmentation_concatenation_reproduces_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).ry(1, 0.3).h(0).cp(0, 2, 0.7).ry(0, 0.2);
        let segs = split_into_segments(&c, &[0]).unwrap();
        let mut rebuilt = Circuit::new(3);
        for s in &segs {
            for i in &s.local {
                rebuilt.push(i.gate.clone(), i.qubits.clone());
            }
            for i in &s.check {
                rebuilt.push(i.gate.clone(), i.qubits.clone());
            }
        }
        // Equality up to commuting reorder ⇒ identical unitaries.
        assert!(rebuilt.unitary().approx_eq(&c.unitary(), 1e-10));
    }

    #[test]
    fn qaoa_like_segmentation_subset_pair() {
        // One QAOA layer on a 4-ring: ZZ interactions (via CP-like CZs) then Rx mixer.
        let mut c = Circuit::new(4);
        for &(a, b) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            c.cz(a, b);
        }
        for q in 0..4 {
            c.rx(q, 0.4);
        }
        let segs = split_into_segments(&c, &[0, 1]).unwrap();
        // Segment 0: no local prefix, check = the four CZs;
        // Segment 1: local = Rx(0), Rx(1); check = Rx(2), Rx(3).
        assert_eq!(segs.len(), 2);
        assert!(segs[0].local.is_empty());
        assert_eq!(segs[0].check.len(), 4);
        assert_eq!(segs[1].local.len(), 2);
        assert_eq!(segs[1].check.len(), 2);
    }
}
