//! Commutation analysis.
//!
//! QuTracer's check placement and circuit optimizations all reduce to one
//! structural question: is a gate *block-diagonal* in the computational basis
//! of some of its operands? A gate that is block-diagonal on qubit `q`
//! commutes with `Z_q` and with every computational-basis projector on `q`,
//! which is exactly the condition under which
//! * a `Z_q` Pauli check sandwiches it losslessly (`C_R U C_L = U`), and
//! * it can be removed without changing the Z-basis statistics of `q`
//!   (false dependency removal / gate bypassing).
//!
//! Rather than a table of per-gate rules, the predicate is evaluated
//! numerically from the gate's (tiny) matrix, so it is exact for every gate
//! in the set including parametric ones.

use crate::circuit::Instruction;
use qt_math::{Matrix, Pauli};

const TOL: f64 = 1e-12;

/// Whether matrix `m` (size `2^k`) is block-diagonal with respect to the
/// computational basis of the operand bit positions in `positions`.
///
/// Equivalently: `m[i][j] = 0` whenever `i` and `j` differ in any bit listed
/// in `positions`.
pub fn block_diagonal_on_positions(m: &Matrix, positions: &[usize]) -> bool {
    let dim = m.rows();
    let mut mask = 0usize;
    for &p in positions {
        mask |= 1 << p;
    }
    for i in 0..dim {
        for j in 0..dim {
            if (i & mask) != (j & mask) && m[(i, j)].norm() > TOL {
                return false;
            }
        }
    }
    true
}

/// Whether `instr` is block-diagonal in the computational basis of every
/// operand that belongs to `subset`.
///
/// Operands outside `subset` are unconstrained. Returns `true` when the
/// instruction does not touch `subset` at all.
pub fn block_diagonal_on_subset(instr: &Instruction, subset: &[usize]) -> bool {
    let positions: Vec<usize> = instr
        .qubits
        .iter()
        .enumerate()
        .filter(|(_, q)| subset.contains(q))
        .map(|(pos, _)| pos)
        .collect();
    if positions.is_empty() {
        return true;
    }
    block_diagonal_on_positions(&instr.gate.matrix(), &positions)
}

/// Whether `instr`'s unitary commutes with the Pauli `p` applied on operand
/// qubit `q` (identity elsewhere).
///
/// Returns `true` if `instr` does not act on `q` at all.
pub fn commutes_with_pauli(instr: &Instruction, q: usize, p: Pauli) -> bool {
    let Some(pos) = instr.qubits.iter().position(|&x| x == q) else {
        return true;
    };
    let m = instr.gate.matrix();
    let k = instr.qubits.len();
    // Build P at the local operand position.
    let mut pm = Matrix::identity(1);
    for local in (0..k).rev() {
        let f = if local == pos {
            p.matrix()
        } else {
            Matrix::identity(2)
        };
        pm = pm.kron(&f);
    }
    m.mul(&pm).approx_eq(&pm.mul(&m), TOL)
}

/// Whether two instructions commute as operators on the full register.
///
/// Uses the disjoint-support shortcut, then falls back to an exact matrix
/// check on the union of the supports.
pub fn instructions_commute(a: &Instruction, b: &Instruction) -> bool {
    let shared: Vec<usize> = a
        .qubits
        .iter()
        .copied()
        .filter(|q| b.qubits.contains(q))
        .collect();
    if shared.is_empty() {
        return true;
    }
    // Embed both on the union of supports.
    let mut union: Vec<usize> = a.qubits.clone();
    for &q in &b.qubits {
        if !union.contains(&q) {
            union.push(q);
        }
    }
    union.sort_unstable();
    let n = union.len();
    let local_index = |q: usize| union.iter().position(|&x| x == q).unwrap();
    let qa: Vec<usize> = a.qubits.iter().map(|&q| local_index(q)).collect();
    let qb: Vec<usize> = b.qubits.iter().map(|&q| local_index(q)).collect();
    let ma = crate::circuit::embed(&a.gate.matrix(), &qa, n);
    let mb = crate::circuit::embed(&b.gate.matrix(), &qb, n);
    ma.mul(&mb).approx_eq(&mb.mul(&ma), TOL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn instr(gate: Gate, qubits: Vec<usize>) -> Instruction {
        Instruction::new(gate, qubits)
    }

    #[test]
    fn controlled_gates_are_block_diagonal_on_control() {
        for g in [Gate::Cx, Gate::Cy, Gate::Crx(0.7), Gate::Cry(1.1)] {
            let i = instr(g, vec![5, 2]);
            assert!(block_diagonal_on_subset(&i, &[5]), "control side");
            assert!(!block_diagonal_on_subset(&i, &[2]), "target side");
        }
        // Crz is fully diagonal: block-diagonal on both sides.
        let i = instr(Gate::Crz(0.7), vec![5, 2]);
        assert!(block_diagonal_on_subset(&i, &[5]));
        assert!(block_diagonal_on_subset(&i, &[2]));
    }

    #[test]
    fn diagonal_gates_are_block_diagonal_everywhere() {
        for g in [Gate::Cz, Gate::Cp(0.4)] {
            let i = instr(g, vec![1, 3]);
            assert!(block_diagonal_on_subset(&i, &[1]));
            assert!(block_diagonal_on_subset(&i, &[3]));
            assert!(block_diagonal_on_subset(&i, &[1, 3]));
        }
        let rz = instr(Gate::Rz(0.2), vec![0]);
        assert!(block_diagonal_on_subset(&rz, &[0]));
    }

    #[test]
    fn hadamard_is_not_block_diagonal() {
        let h = instr(Gate::H, vec![0]);
        assert!(!block_diagonal_on_subset(&h, &[0]));
        // But trivially block-diagonal on qubits it does not touch.
        assert!(block_diagonal_on_subset(&h, &[1]));
    }

    #[test]
    fn swap_is_not_block_diagonal_on_either_side() {
        let sw = instr(Gate::Swap, vec![0, 1]);
        assert!(!block_diagonal_on_subset(&sw, &[0]));
        assert!(!block_diagonal_on_subset(&sw, &[1]));
    }

    #[test]
    fn ccp_is_block_diagonal_on_all_three() {
        let g = instr(Gate::Ccp(0.9), vec![0, 1, 2]);
        assert!(block_diagonal_on_subset(&g, &[0, 1, 2]));
    }

    #[test]
    fn z_commutation_matches_block_diagonality() {
        let cases = vec![
            (Gate::Cx, vec![0, 1]),
            (Gate::Cz, vec![0, 1]),
            (Gate::H, vec![0]),
            (Gate::Rz(0.3), vec![0]),
            (Gate::Ry(0.3), vec![0]),
            (Gate::Swap, vec![0, 1]),
        ];
        for (g, qs) in cases {
            let i = instr(g, qs.clone());
            for &q in &qs {
                assert_eq!(
                    commutes_with_pauli(&i, q, Pauli::Z),
                    block_diagonal_on_subset(&i, &[q]),
                    "{} on {:?} at {}",
                    i.gate.name(),
                    qs,
                    q
                );
            }
        }
    }

    #[test]
    fn cx_commutes_with_x_on_target() {
        let i = instr(Gate::Cx, vec![0, 1]);
        assert!(commutes_with_pauli(&i, 1, Pauli::X));
        assert!(!commutes_with_pauli(&i, 1, Pauli::Z));
        assert!(commutes_with_pauli(&i, 0, Pauli::Z));
        assert!(!commutes_with_pauli(&i, 0, Pauli::X));
    }

    #[test]
    fn disjoint_instructions_commute() {
        let a = instr(Gate::H, vec![0]);
        let b = instr(Gate::Cx, vec![1, 2]);
        assert!(instructions_commute(&a, &b));
    }

    #[test]
    fn overlapping_commutation_is_exact() {
        let cz01 = instr(Gate::Cz, vec![0, 1]);
        let cz12 = instr(Gate::Cz, vec![1, 2]);
        assert!(instructions_commute(&cz01, &cz12));
        let cx01 = instr(Gate::Cx, vec![0, 1]);
        let cx10 = instr(Gate::Cx, vec![1, 0]);
        assert!(!instructions_commute(&cx01, &cx10));
        let h1 = instr(Gate::H, vec![1]);
        assert!(!instructions_commute(&cz01, &h1));
    }
}
