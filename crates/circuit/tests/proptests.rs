//! Property-based tests for the circuit IR and analysis passes.

use proptest::prelude::*;
use qt_circuit::{commute, passes, Circuit, Gate, Instruction};

fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Ry(t), vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        (q2, -3.0..3.0f64).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
    ]
}

fn arb_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 1..len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for (g, qs) in instrs {
            c.push(g, qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inverse_composes_to_identity(circ in arb_circuit(3, 16)) {
        let mut full = circ.clone();
        full.append(&circ.inverse());
        prop_assert!(full
            .unitary()
            .approx_eq_up_to_phase(&qt_math::Matrix::identity(8), 1e-8));
    }

    #[test]
    fn reduction_is_idempotent(circ in arb_circuit(4, 16), t in 0usize..4) {
        let once = passes::reduce_for_z_measurement(&circ, &[t]);
        let twice = passes::reduce_for_z_measurement(&once.circuit, &[t]);
        prop_assert_eq!(once.circuit.len(), twice.circuit.len());
    }

    #[test]
    fn block_diagonality_matches_z_commutation(
        (g, qs) in arb_gate(3),
        target in 0usize..3,
    ) {
        let instr = Instruction::new(g, qs);
        prop_assume!(instr.acts_on(target));
        prop_assert_eq!(
            commute::block_diagonal_on_subset(&instr, &[target]),
            commute::commutes_with_pauli(&instr, target, qt_math::Pauli::Z)
        );
    }

    #[test]
    fn commutation_check_is_symmetric(
        (g1, q1) in arb_gate(3),
        (g2, q2) in arb_gate(3),
    ) {
        let a = Instruction::new(g1, q1);
        let b = Instruction::new(g2, q2);
        prop_assert_eq!(
            commute::instructions_commute(&a, &b),
            commute::instructions_commute(&b, &a)
        );
    }

    #[test]
    fn depth_never_exceeds_length(circ in arb_circuit(4, 24)) {
        prop_assert!(circ.depth() <= circ.len());
        prop_assert!(circ.depth() >= 1);
    }

    #[test]
    fn remap_preserves_unitary_under_identity(circ in arb_circuit(3, 12)) {
        let id: Vec<usize> = (0..3).collect();
        let same = circ.remap(&id, 3);
        prop_assert!(same.unitary().approx_eq(&circ.unitary(), 1e-12));
    }

    #[test]
    fn state_preparation_cone_keeps_marginal_state(
        circ in arb_circuit(4, 16),
        t in 0usize..4,
    ) {
        // The conservative cone must preserve the reduced density matrix of
        // the target exactly (not just its diagonal).
        let red = passes::reduce_for_state_preparation(&circ, &[t]);
        let full = qt_sim::DensityMatrix::from_circuit(&circ).partial_trace(&[t]);
        let reduced = qt_sim::DensityMatrix::from_circuit(&red.circuit).partial_trace(&[t]);
        prop_assert!(full.to_matrix().approx_eq(&reduced.to_matrix(), 1e-9));
    }
}
